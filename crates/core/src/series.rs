//! The data series model.
//!
//! A *data series* is an ordered sequence of real-valued points (Definition in
//! Section 2 of the paper). For whole-matching similarity search a series of
//! length `n` is treated as a point in an `n`-dimensional space; the paper (and
//! this crate) therefore uses *length* and *dimensionality* interchangeably.
//!
//! Values are stored as `f32` (single precision), matching the paper's setup
//! ("All methods use single precision values").

use std::fmt;
use std::ops::Index;

/// A single, owned, univariate data series.
#[derive(Clone, PartialEq)]
pub struct Series {
    values: Vec<f32>,
}

impl Series {
    /// Creates a series from raw values.
    pub fn new(values: Vec<f32>) -> Self {
        Self { values }
    }

    /// The number of points in the series (its length / dimensionality).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the series contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values of the series.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access to the raw values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Consumes the series, returning its values.
    pub fn into_values(self) -> Vec<f32> {
        self.values
    }

    /// The mean of the series values.
    pub fn mean(&self) -> f32 {
        if self.values.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.values.iter().map(|&v| v as f64).sum();
        (sum / self.values.len() as f64) as f32
    }

    /// The population standard deviation of the series values.
    pub fn std_dev(&self) -> f32 {
        if self.values.is_empty() {
            return 0.0;
        }
        let n = self.values.len() as f64;
        let mean: f64 = self.values.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var: f64 = self
            .values
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() as f32
    }

    /// Z-normalizes the series in place (mean 0, standard deviation 1).
    ///
    /// Series with (near-)zero variance are mapped to the all-zero series, the
    /// convention used by the UCR Suite and by the paper's framework.
    pub fn z_normalize(&mut self) {
        z_normalize(&mut self.values);
    }

    /// Returns a Z-normalized copy of the series.
    pub fn z_normalized(&self) -> Series {
        let mut s = self.clone();
        s.z_normalize();
        s
    }

    /// Returns `true` if the series is (approximately) Z-normalized.
    pub fn is_z_normalized(&self, tolerance: f32) -> bool {
        if self.values.is_empty() {
            return true;
        }
        let sd = self.std_dev();
        // All-constant series normalize to all-zero, which has sd == 0.
        (self.mean().abs() <= tolerance) && ((sd - 1.0).abs() <= tolerance || sd <= tolerance)
    }

    /// A borrowed view of this series.
    #[inline]
    pub fn view(&self) -> SeriesView<'_> {
        SeriesView {
            values: &self.values,
        }
    }
}

impl fmt::Debug for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Series(len={}, ", self.len())?;
        if self.len() <= 8 {
            write!(f, "{:?})", self.values)
        } else {
            write!(
                f,
                "[{:.3}, {:.3}, ..., {:.3}])",
                self.values[0],
                self.values[1],
                self.values[self.len() - 1]
            )
        }
    }
}

impl From<Vec<f32>> for Series {
    fn from(values: Vec<f32>) -> Self {
        Series::new(values)
    }
}

impl From<&[f32]> for Series {
    fn from(values: &[f32]) -> Self {
        Series::new(values.to_vec())
    }
}

impl Index<usize> for Series {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        &self.values[i]
    }
}

/// A borrowed, non-owning view over the values of a data series.
///
/// Used by indexes and scans to avoid copying when series are stored inside a
/// contiguous dataset buffer.
#[derive(Clone, Copy, PartialEq)]
pub struct SeriesView<'a> {
    values: &'a [f32],
}

impl<'a> SeriesView<'a> {
    /// Wraps a slice of values as a series view.
    #[inline]
    pub fn new(values: &'a [f32]) -> Self {
        Self { values }
    }

    /// The length of the viewed series.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The viewed values.
    #[inline]
    pub fn values(&self) -> &'a [f32] {
        self.values
    }

    /// Copies the view into an owned [`Series`].
    pub fn to_owned_series(&self) -> Series {
        Series::new(self.values.to_vec())
    }
}

impl fmt::Debug for SeriesView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SeriesView(len={})", self.len())
    }
}

/// Z-normalizes a slice of values in place (mean 0, standard deviation 1).
///
/// Slices with (near-)zero variance are mapped to all zeros.
pub fn z_normalize(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let n = values.len() as f64;
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let sd = var.sqrt();
    if sd < 1e-8 {
        values.iter_mut().for_each(|v| *v = 0.0);
    } else {
        let inv = 1.0 / sd;
        values
            .iter_mut()
            .for_each(|v| *v = ((*v as f64 - mean) * inv) as f32);
    }
}

/// An in-memory collection of same-length data series stored contiguously.
///
/// This is the canonical representation of the paper's "dataset": a flat file
/// of single-precision values, `series_length` values per series. Indexes
/// usually access it through `hydra-storage`'s instrumented [`DatasetStore`],
/// which counts disk accesses; the in-memory form is used for building and for
/// tests.
///
/// [`DatasetStore`]: https://docs.rs/hydra-storage
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    values: Vec<f32>,
    series_length: usize,
}

impl Dataset {
    /// Creates an empty dataset whose series all have length `series_length`.
    pub fn empty(series_length: usize) -> Self {
        assert!(series_length > 0, "series length must be positive");
        Self {
            values: Vec::new(),
            series_length,
        }
    }

    /// Creates a dataset from a flat buffer of `count * series_length` values.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `series_length`.
    pub fn from_flat(values: Vec<f32>, series_length: usize) -> Self {
        assert!(series_length > 0, "series length must be positive");
        assert!(
            values.len().is_multiple_of(series_length),
            "flat buffer length {} is not a multiple of series length {}",
            values.len(),
            series_length
        );
        Self {
            values,
            series_length,
        }
    }

    /// Creates a dataset from a list of equally long series.
    ///
    /// # Panics
    /// Panics if the series do not all have the same length.
    pub fn from_series<I>(series: I) -> Self
    where
        I: IntoIterator<Item = Series>,
    {
        let mut iter = series.into_iter();
        let first = iter
            .next()
            // hydra-lint: allow(lib-unwrap) non-empty input is the documented panic contract
            .expect("dataset must contain at least one series");
        let series_length = first.len();
        let mut values = first.into_values();
        for s in iter {
            assert_eq!(
                s.len(),
                series_length,
                "all series in a dataset must have equal length"
            );
            values.extend_from_slice(s.values());
        }
        Self {
            values,
            series_length,
        }
    }

    /// Appends one series to the dataset.
    ///
    /// # Panics
    /// Panics if the series length does not match the dataset's series length.
    pub fn push(&mut self, series: &[f32]) {
        assert_eq!(series.len(), self.series_length, "series length mismatch");
        self.values.extend_from_slice(series);
    }

    /// The number of series in the dataset.
    #[inline]
    pub fn len(&self) -> usize {
        self.values
            .len()
            .checked_div(self.series_length)
            .unwrap_or(0)
    }

    /// Returns `true` if the dataset holds no series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The length (dimensionality) of every series in the dataset.
    #[inline]
    pub fn series_length(&self) -> usize {
        self.series_length
    }

    /// The flat value buffer backing the dataset.
    #[inline]
    pub fn flat_values(&self) -> &[f32] {
        &self.values
    }

    /// A view over the `i`-th series.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn series(&self, i: usize) -> SeriesView<'_> {
        let start = i * self.series_length;
        SeriesView::new(&self.values[start..start + self.series_length])
    }

    /// Returns the `i`-th series as a slice, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&[f32]> {
        let start = i.checked_mul(self.series_length)?;
        self.values.get(start..start + self.series_length)
    }

    /// Iterates over all series views in storage order.
    pub fn iter(&self) -> impl Iterator<Item = SeriesView<'_>> + '_ {
        self.values
            .chunks_exact(self.series_length)
            .map(SeriesView::new)
    }

    /// Z-normalizes every series in the dataset in place.
    pub fn z_normalize_all(&mut self) {
        let len = self.series_length;
        for chunk in self.values.chunks_exact_mut(len) {
            z_normalize(chunk);
        }
    }

    /// The total size of the dataset payload in bytes (single precision).
    pub fn size_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basic_accessors() {
        let s = Series::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s[2], 3.0);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
    }

    #[test]
    fn series_std_dev_constant_is_zero() {
        let s = Series::new(vec![5.0; 16]);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn z_normalization_produces_zero_mean_unit_sd() {
        let mut s = Series::new(vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
        s.z_normalize();
        assert!(s.mean().abs() < 1e-5);
        assert!((s.std_dev() - 1.0).abs() < 1e-5);
        assert!(s.is_z_normalized(1e-4));
    }

    #[test]
    fn z_normalization_of_constant_series_is_all_zero() {
        let mut s = Series::new(vec![7.5; 32]);
        s.z_normalize();
        assert!(s.values().iter().all(|&v| v == 0.0));
        assert!(s.is_z_normalized(1e-4));
    }

    #[test]
    fn z_normalized_returns_copy_and_keeps_original() {
        let s = Series::new(vec![1.0, 2.0, 3.0]);
        let z = s.z_normalized();
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert!(z.mean().abs() < 1e-6);
    }

    #[test]
    fn empty_series_is_trivially_normalized() {
        let mut s = Series::new(vec![]);
        s.z_normalize();
        assert!(s.is_empty());
        assert!(s.is_z_normalized(1e-6));
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn dataset_from_flat_and_accessors() {
        let d = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(d.len(), 2);
        assert_eq!(d.series_length(), 3);
        assert_eq!(d.series(0).values(), &[1.0, 2.0, 3.0]);
        assert_eq!(d.series(1).values(), &[4.0, 5.0, 6.0]);
        assert_eq!(d.get(2), None);
        assert_eq!(d.size_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn dataset_from_flat_rejects_ragged_buffer() {
        let _ = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0], 3);
    }

    #[test]
    fn dataset_from_series_and_push() {
        let mut d = Dataset::from_series(vec![
            Series::new(vec![0.0, 1.0]),
            Series::new(vec![2.0, 3.0]),
        ]);
        d.push(&[4.0, 5.0]);
        assert_eq!(d.len(), 3);
        let collected: Vec<_> = d.iter().map(|v| v.values().to_vec()).collect();
        assert_eq!(
            collected,
            vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]]
        );
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dataset_from_series_rejects_mixed_lengths() {
        let _ = Dataset::from_series(vec![Series::new(vec![0.0, 1.0]), Series::new(vec![2.0])]);
    }

    #[test]
    fn dataset_z_normalize_all() {
        let mut d = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], 4);
        d.z_normalize_all();
        for view in d.iter() {
            let s = view.to_owned_series();
            assert!(s.mean().abs() < 1e-5);
            assert!((s.std_dev() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn series_view_round_trip() {
        let s = Series::new(vec![1.0, -1.0, 0.5]);
        let v = s.view();
        assert_eq!(v.len(), 3);
        assert_eq!(v.to_owned_series(), s);
    }
}

//! Runtime-dispatched explicit SIMD kernels for the innermost loops.
//!
//! The paper's cost profile is dominated by two loop shapes: squared
//! Euclidean distance over `f32` series (with the UCR-Suite early-abandoning
//! cadence) and interval lower bounds (SAX/PAA MINDIST and the VA+file cell
//! bounds), both of which ParIS+/MESSI vectorize explicitly. This module
//! provides `std::arch` x86-64 SSE2 and AVX2 implementations of both shapes
//! behind a one-time runtime dispatch (`is_x86_feature_detected!`), with the
//! portable 4-lane path as the universal fallback *and* the test oracle.
//!
//! # Bit-identity contract
//!
//! Every kernel — portable, SSE2, AVX2 — performs the **same floating-point
//! operations in the same association**, so their results are bit-identical
//! on every input (including NaN, ±0.0, subnormals and ragged lengths):
//!
//! * differences are computed in `f32` and then widened (`subps` →
//!   `cvtps_pd`), exactly like the portable `(a[i] - b[i]) as f64`;
//! * multiplies and adds stay separate — **no FMA** — because the portable
//!   path has no fused rounding;
//! * accumulation uses exactly four `f64` lanes (one `__m256d`, or two
//!   `__m128d`), element `i` landing in lane `i % 4`, reduced as
//!   `(acc[0] + acc[1]) + (acc[2] + acc[3])`;
//! * the early-abandoning kernels keep the one-check-per-8-dimensions
//!   cadence, testing the horizontally-reduced scalar sum;
//! * the interval kernels map the scalar branch chain
//!   (`if q < low {low - q} else if q > high {q - high} else {0}`) onto
//!   `max(max(low - q, q - high), 0)` with `maxpd` NaN semantics (the second
//!   operand wins when the compare is false or unordered), which is
//!   element-wise equal to the branches for every interval with
//!   `low <= high` (±∞ edges included) and yields `0` for NaN queries just
//!   like the fallen-through branches.
//!
//! This is what lets the intra-query determinism guarantee span kernels: the
//! same answers and the same per-query counters fall out whether dispatch
//! picked AVX2 or the portable loop.
//!
//! # Dispatch
//!
//! [`active_kernel`] resolves once per process from the `HYDRA_SIMD`
//! environment variable: `portable` forces the fallback, `native` (or unset)
//! picks the widest detected instruction set (AVX2, else SSE2 — the x86-64
//! baseline — else portable on other architectures). The `*_with` variants
//! take an explicit [`Kernel`] for tests and benchmarks; a kernel the CPU
//! cannot run is silently downgraded (AVX2 → SSE2 → portable), so calling
//! them is always safe.

use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

const LANES: usize = 4;
const CHECK_EVERY: usize = 8;

#[inline(always)]
fn lane_sum(acc: [f64; LANES]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// One of the implementations a kernel call can dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// The portable 4-lane Rust path (every architecture; the test oracle).
    Portable,
    /// Explicit SSE2 (the x86-64 baseline: always available there).
    Sse2,
    /// Explicit AVX2 (runtime-detected).
    Avx2,
}

impl Kernel {
    /// Human-readable kernel name (bench/report labels).
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Portable => "portable",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
        }
    }
}

/// The widest kernel the running CPU supports.
pub fn detected_kernel() -> Kernel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            Kernel::Avx2
        } else {
            Kernel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Kernel::Portable
    }
}

/// Resolves a `HYDRA_SIMD` request (`None` = unset) to a kernel.
fn kernel_for_request(request: Option<&str>) -> Kernel {
    match request {
        Some(v) if v.eq_ignore_ascii_case("portable") => Kernel::Portable,
        Some(v) if v.eq_ignore_ascii_case("native") => detected_kernel(),
        Some(v) => {
            eprintln!(
                "warning: ignoring unknown HYDRA_SIMD={v:?}; using native detection \
                 (expected `portable` or `native`)"
            );
            detected_kernel()
        }
        None => detected_kernel(),
    }
}

/// The kernel every dispatched call in this process uses, resolved once from
/// the `HYDRA_SIMD` environment variable (see the module docs).
pub fn active_kernel() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| kernel_for_request(std::env::var("HYDRA_SIMD").ok().as_deref()))
}

/// Downgrades a requested kernel to one the CPU can actually run.
#[inline]
fn effective(kernel: Kernel) -> Kernel {
    #[cfg(target_arch = "x86_64")]
    {
        match kernel {
            Kernel::Avx2 if !is_x86_feature_detected!("avx2") => Kernel::Sse2,
            k => k,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = kernel;
        Kernel::Portable
    }
}

// ---------------------------------------------------------------------------
// Squared Euclidean distance
// ---------------------------------------------------------------------------

/// Full squared Euclidean distance, on the process-wide [`active_kernel`].
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
    squared_euclidean_with(active_kernel(), a, b)
}

/// Full squared Euclidean distance on an explicit kernel.
pub fn squared_euclidean_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f64 {
    match effective(kernel) {
        Kernel::Portable => squared_euclidean_portable(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `effective` downgraded the request to a kernel this CPU
        // supports, so the SSE2 target feature is present at runtime.
        Kernel::Sse2 => unsafe { squared_euclidean_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `effective` downgraded the request to a kernel this CPU
        // supports, so the AVX2 target feature is present at runtime.
        Kernel::Avx2 => unsafe { squared_euclidean_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => squared_euclidean_portable(a, b),
    }
}

/// Early-abandoning squared Euclidean distance, on the [`active_kernel`]:
/// `None` as soon as the partial sum exceeds `threshold` (checked once per 8
/// dimensions and once at the end), else the full squared distance.
#[inline]
pub fn squared_euclidean_early_abandon(a: &[f32], b: &[f32], threshold: f64) -> Option<f64> {
    squared_euclidean_early_abandon_with(active_kernel(), a, b, threshold)
}

/// Early-abandoning squared Euclidean distance on an explicit kernel.
pub fn squared_euclidean_early_abandon_with(
    kernel: Kernel,
    a: &[f32],
    b: &[f32],
    threshold: f64,
) -> Option<f64> {
    match effective(kernel) {
        Kernel::Portable => squared_euclidean_early_abandon_portable(a, b, threshold),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `effective` downgraded the request to a kernel this CPU
        // supports, so the SSE2 target feature is present at runtime.
        Kernel::Sse2 => unsafe { squared_euclidean_early_abandon_sse2(a, b, threshold) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `effective` downgraded the request to a kernel this CPU
        // supports, so the AVX2 target feature is present at runtime.
        Kernel::Avx2 => unsafe { squared_euclidean_early_abandon_avx2(a, b, threshold) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => squared_euclidean_early_abandon_portable(a, b, threshold),
    }
}

fn squared_euclidean_portable(a: &[f32], b: &[f32]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let chunks_a = a.chunks_exact(LANES);
    let chunks_b = b.chunks_exact(LANES);
    let tail_a = chunks_a.remainder();
    let tail_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for (lane, slot) in acc.iter_mut().enumerate() {
            let d = (ca[lane] - cb[lane]) as f64;
            *slot += d * d;
        }
    }
    let mut sum = lane_sum(acc);
    for (&x, &y) in tail_a.iter().zip(tail_b.iter()) {
        let d = (x - y) as f64;
        sum += d * d;
    }
    sum
}

fn squared_euclidean_early_abandon_portable(a: &[f32], b: &[f32], threshold: f64) -> Option<f64> {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let blocks_a = a.chunks_exact(CHECK_EVERY);
    let blocks_b = b.chunks_exact(CHECK_EVERY);
    let tail_a = blocks_a.remainder();
    let tail_b = blocks_b.remainder();
    for (ba, bb) in blocks_a.zip(blocks_b) {
        for step in 0..CHECK_EVERY / LANES {
            for (lane, slot) in acc.iter_mut().enumerate() {
                let i = step * LANES + lane;
                let d = (ba[i] - bb[i]) as f64;
                *slot += d * d;
            }
        }
        if lane_sum(acc) > threshold {
            return None;
        }
    }
    let mut sum = lane_sum(acc);
    for (&x, &y) in tail_a.iter().zip(tail_b.iter()) {
        let d = (x - y) as f64;
        sum += d * d;
    }
    if sum > threshold {
        None
    } else {
        Some(sum)
    }
}

/// `(acc[0] + acc[1]) + (acc[2] + acc[3])` over two 2-lane halves.
///
/// Safe under target-feature 1.1: every caller is itself an SSE2-or-wider
/// `#[target_feature]` function, which makes this a safe call site.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "sse2")]
fn reduce_halves(acc01: __m128d, acc23: __m128d) -> f64 {
    let s01 = _mm_add_sd(acc01, _mm_unpackhi_pd(acc01, acc01));
    let s23 = _mm_add_sd(acc23, _mm_unpackhi_pd(acc23, acc23));
    _mm_cvtsd_f64(_mm_add_sd(s01, s23))
}

/// Safe under target-feature 1.1: callers already run with AVX enabled
/// (the AVX2 kernels below imply it), which makes the lane-extract
/// intrinsics safe to call here.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx")]
fn reduce256(acc: __m256d) -> f64 {
    reduce_halves(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// SAFETY (callers): the CPU must support the enabled target feature;
// `effective` guarantees it before every dispatch.
unsafe fn squared_euclidean_sse2(a: &[f32], b: &[f32]) -> f64 {
    let n = a.len().min(b.len());
    let mut acc01 = _mm_setzero_pd();
    let mut acc23 = _mm_setzero_pd();
    let chunks = n / LANES;
    for c in 0..chunks {
        let i = c * LANES;
        // SAFETY: i + LANES <= n <= a.len(), b.len(): both 4-wide f32
        // loads are in bounds.
        let dv = unsafe {
            _mm_sub_ps(
                _mm_loadu_ps(a.as_ptr().add(i)),
                _mm_loadu_ps(b.as_ptr().add(i)),
            )
        };
        let d01 = _mm_cvtps_pd(dv);
        let d23 = _mm_cvtps_pd(_mm_movehl_ps(dv, dv));
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    }
    let mut sum = reduce_halves(acc01, acc23);
    for i in chunks * LANES..n {
        // SAFETY: i < n <= a.len(), b.len().
        let d = unsafe { (*a.get_unchecked(i) - *b.get_unchecked(i)) as f64 };
        sum += d * d;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// SAFETY (callers): the CPU must support the enabled target feature;
// `effective` guarantees it before every dispatch.
unsafe fn squared_euclidean_early_abandon_sse2(
    a: &[f32],
    b: &[f32],
    threshold: f64,
) -> Option<f64> {
    let n = a.len().min(b.len());
    let mut acc01 = _mm_setzero_pd();
    let mut acc23 = _mm_setzero_pd();
    let blocks = n / CHECK_EVERY;
    for blk in 0..blocks {
        for step in 0..CHECK_EVERY / LANES {
            let i = blk * CHECK_EVERY + step * LANES;
            // SAFETY: i + LANES <= n <= a.len(), b.len(): both 4-wide f32
            // loads are in bounds.
            let dv = unsafe {
                _mm_sub_ps(
                    _mm_loadu_ps(a.as_ptr().add(i)),
                    _mm_loadu_ps(b.as_ptr().add(i)),
                )
            };
            let d01 = _mm_cvtps_pd(dv);
            let d23 = _mm_cvtps_pd(_mm_movehl_ps(dv, dv));
            acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
            acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
        }
        if reduce_halves(acc01, acc23) > threshold {
            return None;
        }
    }
    let mut sum = reduce_halves(acc01, acc23);
    for i in blocks * CHECK_EVERY..n {
        // SAFETY: i < n <= a.len(), b.len().
        let d = unsafe { (*a.get_unchecked(i) - *b.get_unchecked(i)) as f64 };
        sum += d * d;
    }
    if sum > threshold {
        None
    } else {
        Some(sum)
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY (callers): the CPU must support the enabled target feature;
// `effective` guarantees it before every dispatch.
unsafe fn squared_euclidean_avx2(a: &[f32], b: &[f32]) -> f64 {
    let n = a.len().min(b.len());
    let mut acc = _mm256_setzero_pd();
    let chunks = n / LANES;
    for c in 0..chunks {
        let i = c * LANES;
        // SAFETY: i + LANES <= n <= a.len(), b.len(): both 4-wide f32
        // loads are in bounds.
        let dv = unsafe {
            _mm_sub_ps(
                _mm_loadu_ps(a.as_ptr().add(i)),
                _mm_loadu_ps(b.as_ptr().add(i)),
            )
        };
        let d = _mm256_cvtps_pd(dv);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    let mut sum = reduce256(acc);
    for i in chunks * LANES..n {
        // SAFETY: i < n <= a.len(), b.len().
        let d = unsafe { (*a.get_unchecked(i) - *b.get_unchecked(i)) as f64 };
        sum += d * d;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY (callers): the CPU must support the enabled target feature;
// `effective` guarantees it before every dispatch.
unsafe fn squared_euclidean_early_abandon_avx2(
    a: &[f32],
    b: &[f32],
    threshold: f64,
) -> Option<f64> {
    let n = a.len().min(b.len());
    let mut acc = _mm256_setzero_pd();
    let blocks = n / CHECK_EVERY;
    for blk in 0..blocks {
        for step in 0..CHECK_EVERY / LANES {
            let i = blk * CHECK_EVERY + step * LANES;
            // SAFETY: i + LANES <= n <= a.len(), b.len(): both 4-wide f32
            // loads are in bounds.
            let dv = unsafe {
                _mm_sub_ps(
                    _mm_loadu_ps(a.as_ptr().add(i)),
                    _mm_loadu_ps(b.as_ptr().add(i)),
                )
            };
            let d = _mm256_cvtps_pd(dv);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
        }
        if reduce256(acc) > threshold {
            return None;
        }
    }
    let mut sum = reduce256(acc);
    for i in blocks * CHECK_EVERY..n {
        // SAFETY: i < n <= a.len(), b.len().
        let d = unsafe { (*a.get_unchecked(i) - *b.get_unchecked(i)) as f64 };
        sum += d * d;
    }
    if sum > threshold {
        None
    } else {
        Some(sum)
    }
}

// ---------------------------------------------------------------------------
// Interval (MINDIST-style) lower bounds
// ---------------------------------------------------------------------------

/// `max(a, b)` with `maxpd` semantics: the second operand wins when the
/// compare is false **or unordered**, so NaN in `a` yields `b`.
#[inline(always)]
fn sse_max(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// The per-dimension gap between a query value and an interval `[low, high]`:
/// `low - q` below the interval, `q - high` above it, `0` inside (and `0`
/// for a NaN query value, matching the fallen-through scalar branches).
#[inline(always)]
fn interval_gap(q: f64, low: f64, high: f64) -> f64 {
    sse_max(sse_max(low - q, q - high), 0.0)
}

/// Sum over dimensions of the squared gap between `q[d]` and
/// `[low[d], high[d]]` — the shared core of the SAX/PAA MINDIST and the
/// VA+file cell bound (callers take the square root). Dispatches on the
/// process-wide [`active_kernel`].
#[inline]
pub fn interval_mindist_sq(q: &[f32], low: &[f64], high: &[f64]) -> f64 {
    interval_mindist_sq_with(active_kernel(), q, low, high)
}

/// [`interval_mindist_sq`] on an explicit kernel.
pub fn interval_mindist_sq_with(kernel: Kernel, q: &[f32], low: &[f64], high: &[f64]) -> f64 {
    match effective(kernel) {
        Kernel::Portable => interval_mindist_sq_portable(q, low, high),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `effective` downgraded the request to a kernel this CPU
        // supports, so the SSE2 target feature is present at runtime.
        Kernel::Sse2 => unsafe { interval_mindist_sq_sse2(q, low, high) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `effective` downgraded the request to a kernel this CPU
        // supports, so the AVX2 target feature is present at runtime.
        Kernel::Avx2 => unsafe { interval_mindist_sq_avx2(q, low, high) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => interval_mindist_sq_portable(q, low, high),
    }
}

/// Weighted variant: sum of `(w[d] * gap) * gap` (the association the SAX
/// MINDIST uses — segment width times squared gap, multiplied left to
/// right). Dispatches on the process-wide [`active_kernel`].
#[inline]
pub fn interval_mindist_weighted_sq(q: &[f32], low: &[f64], high: &[f64], w: &[f64]) -> f64 {
    interval_mindist_weighted_sq_with(active_kernel(), q, low, high, w)
}

/// [`interval_mindist_weighted_sq`] on an explicit kernel.
pub fn interval_mindist_weighted_sq_with(
    kernel: Kernel,
    q: &[f32],
    low: &[f64],
    high: &[f64],
    w: &[f64],
) -> f64 {
    match effective(kernel) {
        Kernel::Portable => interval_mindist_weighted_sq_portable(q, low, high, w),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `effective` downgraded the request to a kernel this CPU
        // supports, so the SSE2 target feature is present at runtime.
        Kernel::Sse2 => unsafe { interval_mindist_weighted_sq_sse2(q, low, high, w) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `effective` downgraded the request to a kernel this CPU
        // supports, so the AVX2 target feature is present at runtime.
        Kernel::Avx2 => unsafe { interval_mindist_weighted_sq_avx2(q, low, high, w) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => interval_mindist_weighted_sq_portable(q, low, high, w),
    }
}

fn interval_mindist_sq_portable(q: &[f32], low: &[f64], high: &[f64]) -> f64 {
    let n = q.len().min(low.len()).min(high.len());
    let mut acc = [0.0f64; LANES];
    let chunks = n / LANES;
    for c in 0..chunks {
        for (lane, slot) in acc.iter_mut().enumerate() {
            let i = c * LANES + lane;
            let d = interval_gap(q[i] as f64, low[i], high[i]);
            *slot += d * d;
        }
    }
    let mut sum = lane_sum(acc);
    for i in chunks * LANES..n {
        let d = interval_gap(q[i] as f64, low[i], high[i]);
        sum += d * d;
    }
    sum
}

fn interval_mindist_weighted_sq_portable(q: &[f32], low: &[f64], high: &[f64], w: &[f64]) -> f64 {
    let n = q.len().min(low.len()).min(high.len()).min(w.len());
    let mut acc = [0.0f64; LANES];
    let chunks = n / LANES;
    for c in 0..chunks {
        for (lane, slot) in acc.iter_mut().enumerate() {
            let i = c * LANES + lane;
            let d = interval_gap(q[i] as f64, low[i], high[i]);
            *slot += (w[i] * d) * d;
        }
    }
    let mut sum = lane_sum(acc);
    for i in chunks * LANES..n {
        let d = interval_gap(q[i] as f64, low[i], high[i]);
        sum += (w[i] * d) * d;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// SAFETY (callers): the CPU must support the enabled target feature;
// `effective` guarantees it before every dispatch.
unsafe fn interval_mindist_sq_sse2(q: &[f32], low: &[f64], high: &[f64]) -> f64 {
    let n = q.len().min(low.len()).min(high.len());
    let zero = _mm_setzero_pd();
    let mut acc01 = _mm_setzero_pd();
    let mut acc23 = _mm_setzero_pd();
    let chunks = n / LANES;
    for c in 0..chunks {
        let i = c * LANES;
        // SAFETY: i + LANES <= n, which is min'ed over every slice length:
        // the 4-wide f32 load and the 2-wide f64 loads at i and i + 2 are
        // all in bounds.
        let qv = unsafe { _mm_loadu_ps(q.as_ptr().add(i)) };
        let q01 = _mm_cvtps_pd(qv);
        let q23 = _mm_cvtps_pd(_mm_movehl_ps(qv, qv));
        // SAFETY: as above — i + 3 < n <= low.len(), high.len().
        let (lo01, lo23, hi01, hi23) = unsafe {
            (
                _mm_loadu_pd(low.as_ptr().add(i)),
                _mm_loadu_pd(low.as_ptr().add(i + 2)),
                _mm_loadu_pd(high.as_ptr().add(i)),
                _mm_loadu_pd(high.as_ptr().add(i + 2)),
            )
        };
        let d01 = _mm_max_pd(
            _mm_max_pd(_mm_sub_pd(lo01, q01), _mm_sub_pd(q01, hi01)),
            zero,
        );
        let d23 = _mm_max_pd(
            _mm_max_pd(_mm_sub_pd(lo23, q23), _mm_sub_pd(q23, hi23)),
            zero,
        );
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    }
    let mut sum = reduce_halves(acc01, acc23);
    for i in chunks * LANES..n {
        // SAFETY: i < n, which is min'ed over every slice length.
        let d = unsafe {
            interval_gap(
                *q.get_unchecked(i) as f64,
                *low.get_unchecked(i),
                *high.get_unchecked(i),
            )
        };
        sum += d * d;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// SAFETY (callers): the CPU must support the enabled target feature;
// `effective` guarantees it before every dispatch.
unsafe fn interval_mindist_weighted_sq_sse2(
    q: &[f32],
    low: &[f64],
    high: &[f64],
    w: &[f64],
) -> f64 {
    let n = q.len().min(low.len()).min(high.len()).min(w.len());
    let zero = _mm_setzero_pd();
    let mut acc01 = _mm_setzero_pd();
    let mut acc23 = _mm_setzero_pd();
    let chunks = n / LANES;
    for c in 0..chunks {
        let i = c * LANES;
        // SAFETY: i + LANES <= n, which is min'ed over every slice length:
        // the 4-wide f32 load and the 2-wide f64 loads at i and i + 2 are
        // all in bounds.
        let qv = unsafe { _mm_loadu_ps(q.as_ptr().add(i)) };
        let q01 = _mm_cvtps_pd(qv);
        let q23 = _mm_cvtps_pd(_mm_movehl_ps(qv, qv));
        // SAFETY: as above — i + 3 < n <= low.len(), high.len().
        let (lo01, lo23, hi01, hi23) = unsafe {
            (
                _mm_loadu_pd(low.as_ptr().add(i)),
                _mm_loadu_pd(low.as_ptr().add(i + 2)),
                _mm_loadu_pd(high.as_ptr().add(i)),
                _mm_loadu_pd(high.as_ptr().add(i + 2)),
            )
        };
        // SAFETY: i + 3 < n <= w.len().
        let (w01, w23) = unsafe {
            (
                _mm_loadu_pd(w.as_ptr().add(i)),
                _mm_loadu_pd(w.as_ptr().add(i + 2)),
            )
        };
        let d01 = _mm_max_pd(
            _mm_max_pd(_mm_sub_pd(lo01, q01), _mm_sub_pd(q01, hi01)),
            zero,
        );
        let d23 = _mm_max_pd(
            _mm_max_pd(_mm_sub_pd(lo23, q23), _mm_sub_pd(q23, hi23)),
            zero,
        );
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_mul_pd(w01, d01), d01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(_mm_mul_pd(w23, d23), d23));
    }
    let mut sum = reduce_halves(acc01, acc23);
    for i in chunks * LANES..n {
        // SAFETY: i < n, which is min'ed over every slice length
        // (w.len() included).
        let (d, wi) = unsafe {
            (
                interval_gap(
                    *q.get_unchecked(i) as f64,
                    *low.get_unchecked(i),
                    *high.get_unchecked(i),
                ),
                *w.get_unchecked(i),
            )
        };
        sum += wi * d * d;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY (callers): the CPU must support the enabled target feature;
// `effective` guarantees it before every dispatch.
unsafe fn interval_mindist_sq_avx2(q: &[f32], low: &[f64], high: &[f64]) -> f64 {
    let n = q.len().min(low.len()).min(high.len());
    let zero = _mm256_setzero_pd();
    let mut acc = _mm256_setzero_pd();
    let chunks = n / LANES;
    for c in 0..chunks {
        let i = c * LANES;
        // SAFETY: i + LANES <= n, which is min'ed over every slice length:
        // the 4-wide loads are in bounds.
        let (qv, lo, hi) = unsafe {
            (
                _mm256_cvtps_pd(_mm_loadu_ps(q.as_ptr().add(i))),
                _mm256_loadu_pd(low.as_ptr().add(i)),
                _mm256_loadu_pd(high.as_ptr().add(i)),
            )
        };
        let d = _mm256_max_pd(
            _mm256_max_pd(_mm256_sub_pd(lo, qv), _mm256_sub_pd(qv, hi)),
            zero,
        );
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    let mut sum = reduce256(acc);
    for i in chunks * LANES..n {
        // SAFETY: i < n, which is min'ed over every slice length.
        let d = unsafe {
            interval_gap(
                *q.get_unchecked(i) as f64,
                *low.get_unchecked(i),
                *high.get_unchecked(i),
            )
        };
        sum += d * d;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY (callers): the CPU must support the enabled target feature;
// `effective` guarantees it before every dispatch.
unsafe fn interval_mindist_weighted_sq_avx2(
    q: &[f32],
    low: &[f64],
    high: &[f64],
    w: &[f64],
) -> f64 {
    let n = q.len().min(low.len()).min(high.len()).min(w.len());
    let zero = _mm256_setzero_pd();
    let mut acc = _mm256_setzero_pd();
    let chunks = n / LANES;
    for c in 0..chunks {
        let i = c * LANES;
        // SAFETY: i + LANES <= n, which is min'ed over every slice length:
        // the 4-wide loads are in bounds.
        let (qv, lo, hi) = unsafe {
            (
                _mm256_cvtps_pd(_mm_loadu_ps(q.as_ptr().add(i))),
                _mm256_loadu_pd(low.as_ptr().add(i)),
                _mm256_loadu_pd(high.as_ptr().add(i)),
            )
        };
        // SAFETY: i + LANES <= n <= w.len().
        let wv = unsafe { _mm256_loadu_pd(w.as_ptr().add(i)) };
        let d = _mm256_max_pd(
            _mm256_max_pd(_mm256_sub_pd(lo, qv), _mm256_sub_pd(qv, hi)),
            zero,
        );
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_mul_pd(wv, d), d));
    }
    let mut sum = reduce256(acc);
    for i in chunks * LANES..n {
        // SAFETY: i < n, which is min'ed over every slice length
        // (w.len() included).
        let (d, wi) = unsafe {
            (
                interval_gap(
                    *q.get_unchecked(i) as f64,
                    *low.get_unchecked(i),
                    *high.get_unchecked(i),
                ),
                *w.get_unchecked(i),
            )
        };
        sum += wi * d * d;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_KERNELS: [Kernel; 3] = [Kernel::Portable, Kernel::Sse2, Kernel::Avx2];

    /// Deterministic pseudo-random `f32` in about `[-2, 2]`.
    fn lcg(state: &mut u64) -> f32 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 33) as f32 / (1u64 << 30) as f32) - 2.0
    }

    /// Random series of length `n`, with adversarial values sprinkled in:
    /// NaN, ±0.0, ±∞ and subnormals all exercise the bit-identity contract.
    fn adversarial_series(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|i| match (i + seed as usize) % 17 {
                3 => f32::NAN,
                5 => -0.0,
                7 => 0.0,
                9 => 1e-41, // subnormal
                11 => -1e-41,
                13 => f32::INFINITY,
                15 => f32::NEG_INFINITY,
                _ => lcg(&mut state),
            })
            .collect()
    }

    #[test]
    fn kernel_names_and_detection() {
        assert_eq!(Kernel::Portable.name(), "portable");
        assert_eq!(Kernel::Sse2.name(), "sse2");
        assert_eq!(Kernel::Avx2.name(), "avx2");
        // active_kernel is stable across calls (OnceLock).
        assert_eq!(active_kernel(), active_kernel());
        #[cfg(target_arch = "x86_64")]
        assert_ne!(detected_kernel(), Kernel::Portable, "SSE2 is baseline");
    }

    #[test]
    fn hydra_simd_request_resolution() {
        assert_eq!(kernel_for_request(Some("portable")), Kernel::Portable);
        assert_eq!(kernel_for_request(Some("PORTABLE")), Kernel::Portable);
        assert_eq!(kernel_for_request(Some("native")), detected_kernel());
        assert_eq!(kernel_for_request(None), detected_kernel());
        // Unknown values warn and fall back to native detection.
        assert_eq!(kernel_for_request(Some("avx512")), detected_kernel());
    }

    #[test]
    fn squared_euclidean_is_bit_identical_across_kernels() {
        // Lengths straddling the 4-lane and 8-block boundaries, plus longer
        // series; random values with adversarial ones mixed in.
        for n in [
            0usize, 1, 2, 3, 4, 5, 7, 8, 9, 11, 15, 16, 17, 63, 64, 65, 100, 256,
        ] {
            for seed in 0..4u64 {
                let a = adversarial_series(n, seed * 1031 + 7);
                let b = adversarial_series(n, seed * 2027 + 3);
                let oracle = squared_euclidean_with(Kernel::Portable, &a, &b);
                for kernel in ALL_KERNELS {
                    let got = squared_euclidean_with(kernel, &a, &b);
                    assert_eq!(
                        got.to_bits(),
                        oracle.to_bits(),
                        "kernel={kernel:?} n={n} seed={seed} got={got} oracle={oracle}"
                    );
                }
            }
        }
    }

    #[test]
    fn early_abandon_is_bit_identical_across_kernels() {
        for n in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 17, 63, 64, 65, 130] {
            for seed in 0..4u64 {
                let a = adversarial_series(n, seed * 911 + 1);
                let b = adversarial_series(n, seed * 733 + 5);
                let full = squared_euclidean_with(Kernel::Portable, &a, &b);
                let thresholds = [
                    0.0,
                    1.0,
                    full * 0.25,
                    full,
                    full + 1.0,
                    f64::INFINITY,
                    f64::NAN,
                ];
                for &t in &thresholds {
                    let oracle = squared_euclidean_early_abandon_with(Kernel::Portable, &a, &b, t);
                    for kernel in ALL_KERNELS {
                        let got = squared_euclidean_early_abandon_with(kernel, &a, &b, t);
                        assert_eq!(
                            got.map(f64::to_bits),
                            oracle.map(f64::to_bits),
                            "kernel={kernel:?} n={n} seed={seed} t={t}"
                        );
                    }
                }
            }
        }
    }

    /// Satellite guarantee: a *stale* (looser-than-current) best-so-far can
    /// only make early abandoning less eager — the kernel still returns the
    /// exact full distance whenever it completes, bit-identical to the
    /// unbounded computation.
    #[test]
    fn early_abandon_with_stale_looser_threshold_is_exact() {
        let mut state = 99u64;
        for n in [8usize, 33, 64, 100] {
            let a: Vec<f32> = (0..n).map(|_| lcg(&mut state)).collect();
            let b: Vec<f32> = (0..n).map(|_| lcg(&mut state)).collect();
            let exact = squared_euclidean_with(Kernel::Portable, &a, &b);
            for slack in [0.0, 1e-12, 0.5, 10.0, 1e6] {
                let stale = exact * (1.0 + slack) + slack;
                for kernel in ALL_KERNELS {
                    let got = squared_euclidean_early_abandon_with(kernel, &a, &b, stale)
                        .expect("a threshold at or above the true distance never abandons");
                    assert_eq!(got.to_bits(), exact.to_bits(), "kernel={kernel:?} n={n}");
                }
            }
        }
    }

    /// The branch-free gap must match the scalar branch chain for every
    /// interval with `low <= high`, including open (±∞) edges and NaN
    /// queries.
    #[test]
    fn interval_gap_matches_the_branch_reference() {
        fn reference(q: f64, low: f64, high: f64) -> f64 {
            if q < low {
                low - q
            } else if q > high {
                q - high
            } else {
                0.0
            }
        }
        let edges = [
            f64::NEG_INFINITY,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            f64::INFINITY,
        ];
        let queries = [
            f64::NEG_INFINITY,
            -3.0,
            -2.5,
            -1.0,
            -0.0,
            0.0,
            1.0,
            2.5,
            7.0,
            f64::INFINITY,
            f64::NAN,
        ];
        for &low in &edges {
            for &high in &edges {
                let ordered = matches!(
                    low.partial_cmp(&high),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                );
                if !ordered {
                    continue;
                }
                for &q in &queries {
                    let got = interval_gap(q, low, high);
                    let want = reference(q, low, high);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "q={q} low={low} high={high} got={got} want={want}"
                    );
                }
            }
        }
    }

    #[test]
    fn interval_kernels_are_bit_identical_across_kernels() {
        let mut state = 5u64;
        for n in [0usize, 1, 3, 4, 5, 8, 15, 16, 17, 40] {
            for seed in 0..4u64 {
                let q = adversarial_series(n, seed * 389 + 11);
                let (mut low, mut high, mut w) = (Vec::new(), Vec::new(), Vec::new());
                for i in 0..n {
                    let a = lcg(&mut state) as f64;
                    let b = lcg(&mut state) as f64;
                    let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
                    // Open edges on a deterministic subset of dimensions.
                    if i % 5 == 2 {
                        lo = f64::NEG_INFINITY;
                    }
                    if i % 7 == 3 {
                        hi = f64::INFINITY;
                    }
                    low.push(lo);
                    high.push(hi);
                    w.push((i % 3 + 1) as f64 * 1.5);
                }
                let oracle = interval_mindist_sq_with(Kernel::Portable, &q, &low, &high);
                let oracle_w =
                    interval_mindist_weighted_sq_with(Kernel::Portable, &q, &low, &high, &w);
                for kernel in ALL_KERNELS {
                    let got = interval_mindist_sq_with(kernel, &q, &low, &high);
                    assert_eq!(got.to_bits(), oracle.to_bits(), "kernel={kernel:?} n={n}");
                    let got_w = interval_mindist_weighted_sq_with(kernel, &q, &low, &high, &w);
                    assert_eq!(
                        got_w.to_bits(),
                        oracle_w.to_bits(),
                        "weighted kernel={kernel:?} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn interval_mindist_of_a_contained_query_is_zero() {
        let q = [0.5f32, -1.0, 2.0];
        let low = [0.0f64, -1.5, 1.0];
        let high = [1.0f64, 0.0, 3.0];
        for kernel in ALL_KERNELS {
            assert_eq!(interval_mindist_sq_with(kernel, &q, &low, &high), 0.0);
            let w = [2.0f64, 3.0, 4.0];
            assert_eq!(
                interval_mindist_weighted_sq_with(kernel, &q, &low, &high, &w),
                0.0
            );
        }
    }

    #[test]
    fn dispatched_entry_points_agree_with_the_active_kernel() {
        let a = adversarial_series(37, 1);
        let b = adversarial_series(37, 2);
        assert_eq!(
            squared_euclidean(&a, &b).to_bits(),
            squared_euclidean_with(active_kernel(), &a, &b).to_bits()
        );
        assert_eq!(
            squared_euclidean_early_abandon(&a, &b, 10.0).map(f64::to_bits),
            squared_euclidean_early_abandon_with(active_kernel(), &a, &b, 10.0).map(f64::to_bits)
        );
        let q = [0.5f32; 7];
        let low = [-1.0f64; 7];
        let high = [0.0f64; 7];
        let w = [2.0f64; 7];
        assert_eq!(
            interval_mindist_sq(&q, &low, &high).to_bits(),
            interval_mindist_sq_with(active_kernel(), &q, &low, &high).to_bits()
        );
        assert_eq!(
            interval_mindist_weighted_sq(&q, &low, &high, &w).to_bits(),
            interval_mindist_weighted_sq_with(active_kernel(), &q, &low, &high, &w).to_bits()
        );
    }
}

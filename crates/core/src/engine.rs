//! The unified query engine: one driver for all ten methods.
//!
//! Every method in the suite — sequential scans, multi-step filters and
//! pre-built indexes alike — is answered through the same dyn-dispatch
//! interface here. A [`QueryEngine`] owns a built [`AnsweringMethod`] as a
//! trait object, an optional handle to the instrumented store's I/O counters
//! (the [`IoSource`] implemented by `hydra_storage::DatasetStore`), and the
//! running [`QueryStats`] aggregate across the queries it has answered.
//!
//! The engine enforces the measurement discipline the experiment harness
//! previously re-implemented per call site:
//!
//! * I/O counters are reset before each query and reconciled into the query's
//!   [`QueryStats`] afterwards — methods that charge their I/O through stats
//!   (leaf reads) and methods whose traffic is only visible to the store are
//!   accounted under the same rule (whichever recorded more pages wins, so
//!   neither path is lost);
//! * wall-clock time is measured around the dyn call;
//! * per-query stats are merged into a running total, giving workload-level
//!   aggregates (mean pruning ratio, total I/O) for free.

use crate::knn::AnswerSet;
use crate::method::{AnsweringMethod, IndexFootprint, MethodDescriptor};
use crate::query::Query;
use crate::stats::{IoSnapshot, QueryStats};
use crate::Result;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of I/O counters observed around every query.
///
/// Implemented by `hydra_storage::DatasetStore`; defined here so the engine
/// can reconcile store-side traffic without depending on the storage crate.
pub trait IoSource: Send + Sync {
    /// A point-in-time copy of the counters.
    fn io_snapshot(&self) -> IoSnapshot;

    /// Resets the counters (and any sequentiality tracking) to zero.
    fn reset_io(&self);
}

/// The result of one engine-driven query: the exact answers plus the
/// reconciled measurements.
#[derive(Clone, Debug)]
pub struct EngineAnswer {
    /// The exact answer set.
    pub answers: AnswerSet,
    /// Work counters for this query, with I/O reconciled against the store.
    pub stats: QueryStats,
    /// Wall-clock time of the dyn `answer` call.
    pub wall_time: Duration,
}

/// A built method plus everything needed to answer and measure queries
/// uniformly.
pub struct QueryEngine {
    method: Box<dyn AnsweringMethod>,
    io: Option<Arc<dyn IoSource>>,
    dataset_size: usize,
    build_time: Duration,
    build_io: IoSnapshot,
    totals: QueryStats,
    queries_answered: u64,
}

impl QueryEngine {
    /// Wraps a built method. `dataset_size` is the number of series the
    /// method answers over (the denominator of pruning ratios).
    pub fn new(method: Box<dyn AnsweringMethod>, dataset_size: usize) -> Self {
        Self {
            method,
            io: None,
            dataset_size,
            build_time: Duration::ZERO,
            build_io: IoSnapshot::default(),
            totals: QueryStats::default(),
            queries_answered: 0,
        }
    }

    /// Attaches the store's I/O counters; they are reset before and read
    /// after every query.
    pub fn with_io_source(mut self, io: Arc<dyn IoSource>) -> Self {
        self.io = Some(io);
        self
    }

    /// Records what index construction cost (time and I/O), so downstream
    /// reporting can model build phases without a side channel.
    pub fn with_build_measurement(mut self, build_time: Duration, build_io: IoSnapshot) -> Self {
        self.build_time = build_time;
        self.build_io = build_io;
        self
    }

    /// The method's static description.
    pub fn descriptor(&self) -> MethodDescriptor {
        self.method.descriptor()
    }

    /// The structural footprint, when the method builds an index.
    pub fn footprint(&self) -> Option<IndexFootprint> {
        self.method.index_footprint()
    }

    /// The wrapped method.
    pub fn method(&self) -> &dyn AnsweringMethod {
        self.method.as_ref()
    }

    /// The number of series the engine answers over.
    pub fn dataset_size(&self) -> usize {
        self.dataset_size
    }

    /// Wall-clock time of index construction (zero for scans).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// I/O counted during index construction.
    pub fn build_io(&self) -> IoSnapshot {
        self.build_io
    }

    /// The number of queries answered so far.
    pub fn queries_answered(&self) -> u64 {
        self.queries_answered
    }

    /// The running total of per-query stats since construction (or the last
    /// [`QueryEngine::reset_totals`]).
    pub fn totals(&self) -> &QueryStats {
        &self.totals
    }

    /// Mean pruning ratio across the answered queries.
    pub fn mean_pruning_ratio(&self) -> f64 {
        if self.queries_answered == 0 || self.dataset_size == 0 {
            return 0.0;
        }
        let mean_examined = self.totals.raw_series_examined as f64 / self.queries_answered as f64;
        (1.0 - mean_examined / self.dataset_size as f64).clamp(0.0, 1.0)
    }

    /// Clears the running aggregate (e.g. between workloads).
    pub fn reset_totals(&mut self) {
        self.totals = QueryStats::default();
        self.queries_answered = 0;
    }

    /// Answers an exact query, measuring it and folding the stats into the
    /// running totals.
    pub fn answer(&mut self, query: &Query) -> Result<EngineAnswer> {
        if let Some(io) = &self.io {
            io.reset_io();
        }
        let mut stats = QueryStats::default();
        let clock = Instant::now();
        let answers = self.method.answer(query, &mut stats)?;
        let wall_time = clock.elapsed();
        if let Some(io) = &self.io {
            let observed = io.io_snapshot();
            // Methods charge leaf reads through their stats; the store
            // counters cover raw-file traffic. Keep whichever accounting path
            // recorded more pages so neither is lost.
            if observed.total_pages() > stats.io_snapshot().total_pages() {
                stats.sequential_page_accesses = observed.sequential_pages;
                stats.random_page_accesses = observed.random_pages;
                stats.bytes_read = observed.bytes_read;
            }
        }
        self.totals.merge(&stats);
        self.queries_answered += 1;
        Ok(EngineAnswer {
            answers,
            stats,
            wall_time,
        })
    }

    /// Answers an exact query, discarding the measurements.
    pub fn answer_simple(&mut self, query: &Query) -> Result<AnswerSet> {
        Ok(self.answer(query)?.answers)
    }
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("method", &self.descriptor().name)
            .field("dataset_size", &self.dataset_size)
            .field("queries_answered", &self.queries_answered)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnHeap;
    use crate::method::MethodDescriptor;
    use crate::series::{Dataset, Series};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A brute-force method that examines every series.
    struct BruteForce {
        data: Dataset,
        io: Arc<FakeIo>,
    }

    impl AnsweringMethod for BruteForce {
        fn descriptor(&self) -> MethodDescriptor {
            MethodDescriptor {
                name: "BruteForce",
                representation: "raw",
                is_index: false,
                supports_approximate: false,
            }
        }

        fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
            self.io
                .pages
                .fetch_add(self.data.len() as u64, Ordering::SeqCst);
            let mut heap = KnnHeap::new(query.k().unwrap_or(1));
            for (i, s) in self.data.iter().enumerate() {
                stats.record_raw_series_examined(1);
                heap.offer(i, crate::distance::euclidean(query.values(), s.values()));
            }
            Ok(heap.into_answer_set())
        }
    }

    /// An I/O source backed by a plain page counter.
    #[derive(Default)]
    struct FakeIo {
        pages: AtomicU64,
    }

    impl IoSource for FakeIo {
        fn io_snapshot(&self) -> IoSnapshot {
            let pages = self.pages.load(Ordering::SeqCst);
            IoSnapshot {
                sequential_pages: pages,
                random_pages: 0,
                bytes_read: pages * 4096,
                bytes_written: 0,
            }
        }

        fn reset_io(&self) {
            self.pages.store(0, Ordering::SeqCst);
        }
    }

    fn engine() -> QueryEngine {
        let data = Dataset::from_flat(vec![0.0, 0.0, 1.0, 1.0, 5.0, 5.0, 9.0, 9.0], 2);
        let io = Arc::new(FakeIo::default());
        let size = data.len();
        QueryEngine::new(
            Box::new(BruteForce {
                data,
                io: io.clone(),
            }),
            size,
        )
        .with_io_source(io)
        .with_build_measurement(
            Duration::from_millis(3),
            IoSnapshot {
                bytes_written: 64,
                ..Default::default()
            },
        )
    }

    #[test]
    fn engine_answers_and_aggregates() {
        let mut e = engine();
        assert_eq!(e.descriptor().name, "BruteForce");
        assert_eq!(e.footprint(), None, "scans expose no footprint");
        assert_eq!(e.dataset_size(), 4);
        assert_eq!(e.build_time(), Duration::from_millis(3));
        assert_eq!(e.build_io().bytes_written, 64);

        let q = Query::nearest_neighbor(Series::new(vec![0.9, 0.9]));
        let a = e.answer(&q).unwrap();
        assert_eq!(a.answers.nearest().unwrap().id, 1);
        assert_eq!(a.stats.raw_series_examined, 4);
        // Store-side pages exceed the stats-side zero, so they win.
        assert_eq!(a.stats.sequential_page_accesses, 4);
        assert_eq!(a.stats.bytes_read, 4 * 4096);

        e.answer(&q).unwrap();
        assert_eq!(e.queries_answered(), 2);
        assert_eq!(e.totals().raw_series_examined, 8);
        // Brute force examines everything: zero pruning.
        assert_eq!(e.mean_pruning_ratio(), 0.0);

        e.reset_totals();
        assert_eq!(e.queries_answered(), 0);
        assert_eq!(e.totals().raw_series_examined, 0);
    }

    #[test]
    fn answer_simple_discards_measurements() {
        let mut e = engine();
        let q = Query::nearest_neighbor(Series::new(vec![5.1, 5.1]));
        let ans = e.answer_simple(&q).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 2);
    }

    #[test]
    fn io_reconciliation_prefers_the_larger_recording() {
        /// A method that records more I/O into stats than the store observes.
        struct StatsHeavy;
        impl AnsweringMethod for StatsHeavy {
            fn descriptor(&self) -> MethodDescriptor {
                MethodDescriptor {
                    name: "StatsHeavy",
                    representation: "raw",
                    is_index: false,
                    supports_approximate: false,
                }
            }
            fn answer(&self, _q: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
                stats.record_io(100, 10, 1 << 20);
                Ok(AnswerSet::default())
            }
        }
        let io = Arc::new(FakeIo::default());
        let mut e = QueryEngine::new(Box::new(StatsHeavy), 1).with_io_source(io);
        let q = Query::nearest_neighbor(Series::new(vec![0.0]));
        let a = e.answer(&q).unwrap();
        assert_eq!(a.stats.sequential_page_accesses, 100);
        assert_eq!(a.stats.random_page_accesses, 10);
        assert_eq!(a.stats.bytes_read, 1 << 20);
    }

    #[test]
    fn pruning_ratio_reflects_partial_examination() {
        /// Pretends to examine one series per query over a 10-series dataset.
        struct Pruner;
        impl AnsweringMethod for Pruner {
            fn descriptor(&self) -> MethodDescriptor {
                MethodDescriptor {
                    name: "Pruner",
                    representation: "raw",
                    is_index: true,
                    supports_approximate: false,
                }
            }
            fn answer(&self, _q: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
                stats.record_raw_series_examined(1);
                Ok(AnswerSet::default())
            }
        }
        let mut e = QueryEngine::new(Box::new(Pruner), 10);
        let q = Query::nearest_neighbor(Series::new(vec![0.0]));
        e.answer(&q).unwrap();
        e.answer(&q).unwrap();
        assert!((e.mean_pruning_ratio() - 0.9).abs() < 1e-12);
    }
}

//! The unified query engine: one driver for all ten methods.
//!
//! Every method in the suite — sequential scans, multi-step filters and
//! pre-built indexes alike — is answered through the same dyn-dispatch
//! interface here. A [`QueryEngine`] owns a built [`AnsweringMethod`] as a
//! trait object, an optional handle to the instrumented store's I/O counters
//! (the [`IoSource`] implemented by `hydra_storage::DatasetStore`), and the
//! running [`QueryStats`] aggregate across the queries it has answered.
//!
//! The engine enforces the measurement discipline the experiment harness
//! previously re-implemented per call site:
//!
//! * I/O counters are reset before each query and reconciled into the query's
//!   [`QueryStats`] afterwards — methods that charge their I/O through stats
//!   (leaf reads) and methods whose traffic is only visible to the store are
//!   accounted under the same rule (whichever recorded more pages wins, so
//!   neither path is lost);
//! * wall-clock time is measured around the dyn call;
//! * per-query stats are merged into a running total, giving workload-level
//!   aggregates (mean pruning ratio, total I/O) for free.

use crate::knn::{AnswerSet, Guarantee};
use crate::method::{AnsweringMethod, IndexFootprint, MethodDescriptor};
use crate::parallel::{self, Parallelism};
use crate::query::{AnswerMode, Query};
use crate::stats::{IoSnapshot, QueryStats};
use crate::{Error, Result};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of I/O counters observed around every query.
///
/// Implemented by `hydra_storage::DatasetStore`; defined here so the engine
/// can reconcile store-side traffic without depending on the storage crate.
pub trait IoSource: Send + Sync {
    /// A point-in-time copy of the counters.
    fn io_snapshot(&self) -> IoSnapshot;

    /// Resets the counters (and any sequentiality tracking) to zero.
    fn reset_io(&self);

    /// A point-in-time copy of the traffic recorded *by the calling thread*.
    ///
    /// Sources that shard their counters per thread (the instrumented store)
    /// override this so concurrent queries can each observe exactly their own
    /// traffic; the default falls back to the global counters, which is
    /// equivalent for single-threaded sources.
    fn thread_io_snapshot(&self) -> IoSnapshot {
        self.io_snapshot()
    }

    /// Resets the calling thread's counters (and its sequentiality tracking).
    ///
    /// The default falls back to the global reset, which is equivalent for
    /// single-threaded sources.
    fn reset_thread_io(&self) {
        self.reset_io()
    }

    /// Whether [`IoSource::thread_io_snapshot`] / [`IoSource::reset_thread_io`]
    /// really are thread-scoped (as opposed to the global-fallback defaults).
    ///
    /// [`QueryEngine::answer_workload`] only runs queries concurrently over
    /// sources that return `true` here — with the global fallbacks, one
    /// worker's reset would wipe another's in-flight traffic and snapshots
    /// would mix all threads' pages, corrupting per-query stats. Sources that
    /// shard per thread (the instrumented store) override this together with
    /// the two methods above.
    fn has_thread_scoped_counters(&self) -> bool {
        false
    }

    /// Announces which retry attempt (0-based) the calling thread is about to
    /// run, so fault-injecting sources can key their decisions on it (a
    /// transient fault clears after a planned number of attempts). The
    /// default is a no-op for fault-free sources.
    fn begin_attempt(&self, _attempt: u32) {}
}

/// How the engine re-attempts queries that fail with a *retriable* I/O error
/// (see [`Error::is_retriable`]).
///
/// Backoff is charged in deterministic cost-model units — random page
/// accesses, not wall clock — so retried runs stay bit-reproducible: before
/// retry `j` (1-based) the engine charges `backoff_pages << (j - 1)` random
/// pages to the query's stats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per query, including the first (≥ 1).
    pub max_attempts: u32,
    /// Base backoff charge in random pages, doubled on each further retry.
    pub backoff_pages: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, no backoff (the default).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            backoff_pages: 0,
        }
    }

    /// A policy with `max_attempts` total attempts (clamped to ≥ 1) and a
    /// base backoff of `backoff_pages` random pages.
    pub fn new(max_attempts: u32, backoff_pages: u64) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            backoff_pages,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Whether a query ran to completion or was cut short by its
/// [`crate::query::Budget`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// The method finished its search; the answer satisfies the requested
    /// mode's guarantee.
    Complete,
    /// The method ran out of budget and returned its best-so-far answer
    /// (tagged [`Guarantee::Truncated`]).
    Truncated,
}

/// What the engine does with a query whose [`AnswerMode`] the method does not
/// support.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Reject with a typed [`Error::UnsupportedMode`] (the default: an
    /// approximate request must never silently degrade to a slower — or a
    /// differently-guaranteed — answer).
    #[default]
    Strict,
    /// Answer the query exactly instead. The returned [`EngineAnswer`] then
    /// carries [`Guarantee::Exact`], so the substitution stays visible.
    ExactFallback,
}

/// The result of one engine-driven query: the answers (tagged with the
/// guarantee they satisfy) plus the reconciled measurements.
#[derive(Clone, Debug)]
pub struct EngineAnswer {
    /// The answer set.
    pub answers: AnswerSet,
    /// The guarantee the answers actually satisfy (copied from the answer
    /// set; [`Guarantee::Exact`] when an unsupported mode fell back to exact
    /// search under [`FallbackPolicy::ExactFallback`]).
    pub guarantee: Guarantee,
    /// Work counters for this query, with I/O reconciled against the store.
    pub stats: QueryStats,
    /// Wall-clock time of the dyn `answer` call.
    pub wall_time: Duration,
    /// How many attempts the engine made (1 unless a retriable I/O fault was
    /// retried under a [`RetryPolicy`]).
    pub attempts: u32,
}

impl EngineAnswer {
    /// Whether the query completed or was truncated by its budget (derived
    /// from the answer's guarantee).
    pub fn completion(&self) -> Completion {
        match self.guarantee {
            Guarantee::Truncated { .. } => Completion::Truncated,
            _ => Completion::Complete,
        }
    }
}

/// A built method plus everything needed to answer and measure queries
/// uniformly.
pub struct QueryEngine {
    method: Box<dyn AnsweringMethod>,
    io: Option<Arc<dyn IoSource>>,
    dataset_size: usize,
    build_time: Duration,
    build_io: IoSnapshot,
    fallback: FallbackPolicy,
    retry: RetryPolicy,
    totals: QueryStats,
    queries_answered: u64,
    last_batch_io: Option<IoSnapshot>,
}

impl QueryEngine {
    /// Wraps a built method. `dataset_size` is the number of series the
    /// method answers over (the denominator of pruning ratios).
    pub fn new(method: Box<dyn AnsweringMethod>, dataset_size: usize) -> Self {
        Self {
            method,
            io: None,
            dataset_size,
            build_time: Duration::ZERO,
            build_io: IoSnapshot::default(),
            fallback: FallbackPolicy::Strict,
            retry: RetryPolicy::none(),
            totals: QueryStats::default(),
            queries_answered: 0,
            last_batch_io: None,
        }
    }

    /// Attaches the store's I/O counters; they are reset before and read
    /// after every query.
    pub fn with_io_source(mut self, io: Arc<dyn IoSource>) -> Self {
        self.io = Some(io);
        self
    }

    /// Records what index construction cost (time and I/O), so downstream
    /// reporting can model build phases without a side channel.
    pub fn with_build_measurement(mut self, build_time: Duration, build_io: IoSnapshot) -> Self {
        self.build_time = build_time;
        self.build_io = build_io;
        self
    }

    /// Sets what happens when a query's [`AnswerMode`] is outside the
    /// method's capabilities (default: [`FallbackPolicy::Strict`]).
    pub fn with_fallback_policy(mut self, fallback: FallbackPolicy) -> Self {
        self.fallback = fallback;
        self
    }

    /// The configured fallback policy.
    pub fn fallback_policy(&self) -> FallbackPolicy {
        self.fallback
    }

    /// Sets how retriable I/O faults are re-attempted (default:
    /// [`RetryPolicy::none`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The configured retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The method's static description.
    pub fn descriptor(&self) -> MethodDescriptor {
        self.method.descriptor()
    }

    /// The structural footprint, when the method builds an index.
    pub fn footprint(&self) -> Option<IndexFootprint> {
        self.method.index_footprint()
    }

    /// The wrapped method.
    pub fn method(&self) -> &dyn AnsweringMethod {
        self.method.as_ref()
    }

    /// The number of series the engine answers over.
    pub fn dataset_size(&self) -> usize {
        self.dataset_size
    }

    /// Wall-clock time of index construction (zero for scans).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// I/O counted during index construction.
    pub fn build_io(&self) -> IoSnapshot {
        self.build_io
    }

    /// The number of queries answered so far.
    pub fn queries_answered(&self) -> u64 {
        self.queries_answered
    }

    /// The running total of per-query stats since construction (or the last
    /// [`QueryEngine::reset_totals`]).
    pub fn totals(&self) -> &QueryStats {
        &self.totals
    }

    /// Mean pruning ratio across the answered queries.
    pub fn mean_pruning_ratio(&self) -> f64 {
        if self.queries_answered == 0 || self.dataset_size == 0 {
            return 0.0;
        }
        let mean_examined = self.totals.raw_series_examined as f64 / self.queries_answered as f64;
        (1.0 - mean_examined / self.dataset_size as f64).clamp(0.0, 1.0)
    }

    /// Clears the running aggregate (e.g. between workloads).
    pub fn reset_totals(&mut self) {
        self.totals = QueryStats::default();
        self.queries_answered = 0;
    }

    /// Answers a query in its requested mode, measuring it and folding the
    /// stats into the running totals.
    pub fn answer(&mut self, query: &Query) -> Result<EngineAnswer> {
        let answered = measure_query(
            self.method.as_ref(),
            self.io.as_deref(),
            query,
            self.fallback,
            self.retry,
        )?;
        self.totals.merge(&answered.stats);
        self.queries_answered += 1;
        Ok(answered)
    }

    /// Answers a query, discarding the measurements.
    pub fn answer_simple(&mut self, query: &Query) -> Result<AnswerSet> {
        Ok(self.answer(query)?.answers)
    }

    /// Answers one query with `parallelism` worker threads cooperating on it
    /// (intra-query parallelism), measuring it and folding the stats into
    /// the running totals exactly like [`QueryEngine::answer`].
    ///
    /// The determinism contract of the suite extends here: for every method,
    /// thread count and dispatch kernel, the answer set, its guarantee and
    /// the per-query logical work counters are **bit-identical** to the
    /// serial [`QueryEngine::answer`] path (only wall-clock times vary).
    /// Methods without a native intra-query kernel (see
    /// [`AnsweringMethod::intra_answering`]), a resolved thread count of 1,
    /// or an [`IoSource`] without thread-scoped counters all fall back to
    /// the serial path, which trivially satisfies the contract.
    pub fn answer_intra(
        &mut self,
        query: &Query,
        parallelism: Parallelism,
    ) -> Result<EngineAnswer> {
        let threads = parallelism.worker_threads();
        let thread_scoped_io = self
            .io
            .as_ref()
            .is_none_or(|io| io.has_thread_scoped_counters());
        // Budgeted queries take the serial path: intra-query kernels split
        // the candidate space across workers and cannot meter a single
        // best-so-far budget deterministically.
        let answered = match self.method.intra_answering() {
            Some(kernel) if threads > 1 && thread_scoped_io && query.budget().is_none() => {
                measure_intra_query(
                    self.method.as_ref(),
                    kernel,
                    self.io.as_deref(),
                    query,
                    self.fallback,
                    self.retry,
                    threads,
                )?
            }
            _ => measure_query(
                self.method.as_ref(),
                self.io.as_deref(),
                query,
                self.fallback,
                self.retry,
            )?,
        };
        self.totals.merge(&answered.stats);
        self.queries_answered += 1;
        Ok(answered)
    }

    /// Answers a whole workload, spreading the queries over `parallelism`
    /// worker threads.
    ///
    /// Results come back **in workload order**, and the running totals are
    /// merged in workload order too, so the outcome is deterministic: for any
    /// thread count, the answer sets and the per-query work counters are
    /// identical to the serial loop (`cpu_time`/`io_time` naturally vary with
    /// scheduling). Per-query I/O stays exact under concurrency because every
    /// worker resets and reads only its own counter shard (see
    /// [`IoSource::thread_io_snapshot`]); the shards of the shared store still
    /// sum to the workload's true aggregate traffic.
    ///
    /// If any query fails, the stats of the queries *before* the first failing
    /// index are merged, later queries stop being issued, and the first error
    /// in workload order is returned (matching the serial loop).
    pub fn answer_workload(
        &mut self,
        queries: &[Query],
        parallelism: Parallelism,
    ) -> Result<Vec<EngineAnswer>> {
        let threads = parallelism.worker_threads().min(queries.len().max(1));
        let thread_scoped_io = self
            .io
            .as_ref()
            .is_none_or(|io| io.has_thread_scoped_counters());
        // Concurrency is only sound over thread-scoped counters (see
        // [`IoSource::has_thread_scoped_counters`]); otherwise fall back to
        // the serial loop, which is always correct.
        if threads <= 1 || !thread_scoped_io {
            return queries.iter().map(|q| self.answer(q)).collect();
        }
        let method: &dyn AnsweringMethod = self.method.as_ref();
        let io = self.io.as_deref();
        let fallback = self.fallback;
        let retry = self.retry;
        // Like the serial loop, stop issuing work after the first failure.
        // A worker that observes the flag marks its query skipped (`None`)
        // instead of answering it.
        let abort = std::sync::atomic::AtomicBool::new(false);
        let results: Vec<Option<Result<EngineAnswer>>> =
            parallel::map_indexed(queries.len(), threads, |i| {
                if abort.load(std::sync::atomic::Ordering::Relaxed) {
                    return None;
                }
                let result = measure_query(method, io, &queries[i], fallback, retry);
                if result.is_err() {
                    abort.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                Some(result)
            });
        let mut out = Vec::with_capacity(results.len());
        for (i, result) in results.into_iter().enumerate() {
            let answered = match result {
                Some(result) => result?,
                // A pre-error skip: the claim/abort-check race can skip an
                // index *below* the first failing one; the serial loop would
                // have answered it, so repair it here on the calling thread.
                // (Skips above the first error are unreachable: the `?` on
                // that error returns first.)
                None => measure_query(method, io, &queries[i], fallback, retry)?,
            };
            self.totals.merge(&answered.stats);
            self.queries_answered += 1;
            out.push(answered);
        }
        Ok(out)
    }

    /// Answers a batch of queries through the method's native batch kernel,
    /// amortizing one shared data pass across the whole batch; methods
    /// without a kernel (see [`AnsweringMethod::batch_answering`]) fall back
    /// to the per-query loop of [`QueryEngine::answer_workload`].
    ///
    /// The determinism contract of the suite carries over: for every method,
    /// batch size and thread count, the answer sets and the per-query work
    /// counters are **bit-identical to the serial per-query loop** (only
    /// wall-clock times vary). Per-query counters keep their serial meaning —
    /// each query is charged the logical work it would have cost on its own —
    /// while the *physical* traffic of the shared pass (one pass per batch
    /// chunk instead of one per query) is observed at batch scope and exposed
    /// through [`QueryEngine::last_batch_io`].
    ///
    /// With `parallelism` > 1 (over a thread-scoped [`IoSource`]), the batch
    /// is split into contiguous chunks and the kernel runs thread-parallel
    /// *across* chunks — each worker amortizes one pass over its chunk, and
    /// results merge back in batch order.
    ///
    /// Mode routing matches the per-query path exactly: a query whose
    /// [`AnswerMode`] the method does not support is a typed
    /// [`Error::UnsupportedMode`] under [`FallbackPolicy::Strict`] (queries
    /// before it in the batch are answered and merged, like the serial
    /// loop), or substituted with an exact query under
    /// [`FallbackPolicy::ExactFallback`]; range queries are typed
    /// [`Error::UnsupportedQuery`] errors. A method-level kernel error
    /// (length mismatch, empty dataset) reruns the batch through the
    /// per-query loop, which reproduces the serial error semantics exactly.
    pub fn answer_batch(
        &mut self,
        queries: &[Query],
        parallelism: Parallelism,
    ) -> Result<Vec<EngineAnswer>> {
        self.last_batch_io = None;
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        if self.method.batch_answering().is_none() {
            return self.answer_workload(queries, parallelism);
        }
        // Budgeted queries take the per-query loop: a batch kernel shares one
        // physical pass across the whole batch and cannot stop one member's
        // search early without perturbing the others' counters.
        if queries.iter().any(|q| q.budget().is_some()) {
            return self.answer_workload(queries, parallelism);
        }
        // Engine-boundary routing, mirroring `measure_query`: substitute
        // unsupported modes under the exact-fallback policy, and stop the
        // batch at the first rejected query — the serial loop answers the
        // queries before it, then surfaces its typed error. The common case
        // (every query accepted as-is) passes the caller's slice straight
        // through; queries are only cloned when a substitution forces an
        // owned batch.
        let descriptor = self.method.descriptor();
        let mut substituted: Vec<Query> = Vec::new();
        let mut accepted = 0usize;
        let mut boundary_error = None;
        for query in queries {
            if let Err(e) = query.knn_k(descriptor.name) {
                boundary_error = Some(e);
                break;
            }
            if descriptor.modes.supports(query.mode()) {
                if !substituted.is_empty() {
                    substituted.push(query.clone());
                }
            } else {
                match self.fallback {
                    FallbackPolicy::Strict => {
                        boundary_error =
                            Some(Error::unsupported_mode(descriptor.name, query.mode()));
                        break;
                    }
                    FallbackPolicy::ExactFallback => {
                        if substituted.is_empty() {
                            substituted.extend(queries[..accepted].iter().cloned());
                        }
                        substituted.push(query.clone().with_mode(AnswerMode::Exact));
                    }
                }
            }
            accepted += 1;
        }
        let routed: &[Query] = if substituted.is_empty() {
            &queries[..accepted]
        } else {
            &substituted
        };
        match self.run_batch_kernel(routed, parallelism) {
            Ok((answers, physical_io)) => {
                for answered in &answers {
                    self.totals.merge(&answered.stats);
                    self.queries_answered += 1;
                }
                // `Some` means a native kernel actually ran; an empty routed
                // prefix (first query rejected) never reached the kernel.
                if !routed.is_empty() {
                    self.last_batch_io = Some(physical_io);
                }
                match boundary_error {
                    None => Ok(answers),
                    Some(e) => Err(e),
                }
            }
            // A method-level error (length mismatch, empty dataset): the
            // kernel returns no partial results, so rerun through the
            // per-query loop, which answers the prefix before the failing
            // query and surfaces the first error in batch order — exactly
            // the serial semantics.
            Err(_) => self.answer_workload(queries, parallelism),
        }
    }

    /// Runs the native batch kernel over `queries`, thread-parallel across
    /// contiguous chunks, returning the answers in batch order plus the
    /// physical store traffic of all chunks.
    fn run_batch_kernel(
        &self,
        queries: &[Query],
        parallelism: Parallelism,
    ) -> Result<(Vec<EngineAnswer>, IoSnapshot)> {
        let kernel = self
            .method
            .batch_answering()
            // hydra-lint: allow(lib-unwrap) answer_batch checked batch_answering() first
            .expect("checked by answer_batch");
        let io = self.io.as_deref();
        let threads = parallelism.worker_threads().min(queries.len().max(1));
        let thread_scoped_io = self
            .io
            .as_ref()
            .is_none_or(|src| src.has_thread_scoped_counters());
        if threads <= 1 || !thread_scoped_io {
            return run_batch_chunk(kernel, io, queries);
        }
        let ranges = parallel::split_ranges(queries.len(), threads);
        let chunks: Vec<Result<(Vec<EngineAnswer>, IoSnapshot)>> =
            parallel::map_indexed(ranges.len(), ranges.len(), |i| {
                run_batch_chunk(kernel, io, &queries[ranges[i].clone()])
            });
        let mut answers = Vec::with_capacity(queries.len());
        let mut physical = IoSnapshot::default();
        for chunk in chunks {
            let (chunk_answers, chunk_io) = chunk?;
            answers.extend(chunk_answers);
            physical.sequential_pages += chunk_io.sequential_pages;
            physical.random_pages += chunk_io.random_pages;
            physical.bytes_read += chunk_io.bytes_read;
            physical.bytes_written += chunk_io.bytes_written;
        }
        Ok((answers, physical))
    }

    /// The physical store traffic of the most recent
    /// [`QueryEngine::answer_batch`] call that ran a native batch kernel
    /// (summed over its thread chunks), or `None` when the last batch fell
    /// back to the per-query loop (or none ran yet).
    ///
    /// This is the batch-scoped accounting counterpart of the per-query
    /// logical counters: for a batched scan it records **one** sequential
    /// pass per chunk, while every query's own stats keep the full pass the
    /// serial loop would have charged it.
    pub fn last_batch_io(&self) -> Option<IoSnapshot> {
        self.last_batch_io
    }
}

/// A cheaply cloneable, shareable handle over a built method: the
/// serving-layer view of a [`QueryEngine`].
///
/// The engine itself owns mutable running aggregates (totals, query counts),
/// so sharing one across concurrent requests would serialize them behind a
/// lock. A handle drops the aggregates and keeps only the immutable parts —
/// the built method behind an `Arc`, the I/O source, the policies — so
/// cloning is two reference-count bumps and [`EngineHandle::answer`] takes
/// `&self`. Per-query measurement goes through the *same* [`measure_query`]
/// path as [`QueryEngine::answer`], so a handle's answers, guarantees and
/// reconciled stats are bit-identical to the engine it came from; callers
/// aggregate the returned [`EngineAnswer`]s themselves.
#[derive(Clone)]
pub struct EngineHandle {
    method: Arc<dyn AnsweringMethod>,
    io: Option<Arc<dyn IoSource>>,
    dataset_size: usize,
    fallback: FallbackPolicy,
    retry: RetryPolicy,
}

impl EngineHandle {
    /// Answers a query in its requested mode, with exactly the per-query
    /// measurement discipline of [`QueryEngine::answer`] (same mode routing,
    /// I/O reset/reconciliation, retry loop and panic isolation).
    pub fn answer(&self, query: &Query) -> Result<EngineAnswer> {
        measure_query(
            self.method.as_ref(),
            self.io.as_deref(),
            query,
            self.fallback,
            self.retry,
        )
    }

    /// Like [`EngineHandle::answer`], but with the retry loop's attempt
    /// numbering shifted by `base_attempt` (announced through
    /// [`IoSource::begin_attempt`], so fault-injecting sources key their
    /// decisions on the shifted attempt). The serving layer's hedged retries
    /// use a base past the primary's retry budget, giving the speculative
    /// re-submission an independent — but equally deterministic — slice of
    /// the fault plan. `base_attempt = 0` is exactly
    /// [`EngineHandle::answer`].
    pub fn answer_from_attempt(&self, query: &Query, base_attempt: u32) -> Result<EngineAnswer> {
        measure_query_from_attempt(
            self.method.as_ref(),
            self.io.as_deref(),
            query,
            self.fallback,
            self.retry,
            base_attempt,
        )
    }

    /// The method's static description.
    pub fn descriptor(&self) -> MethodDescriptor {
        self.method.descriptor()
    }

    /// The number of series the handle answers over.
    pub fn dataset_size(&self) -> usize {
        self.dataset_size
    }

    /// The configured fallback policy.
    pub fn fallback_policy(&self) -> FallbackPolicy {
        self.fallback
    }

    /// The configured retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandle")
            .field("method", &self.descriptor().name)
            .field("dataset_size", &self.dataset_size)
            .finish_non_exhaustive()
    }
}

impl QueryEngine {
    /// Converts the engine into a cheaply cloneable [`EngineHandle`],
    /// discarding the running aggregates (totals, query counts, batch I/O)
    /// and keeping the built method, I/O source and policies.
    pub fn into_handle(self) -> EngineHandle {
        EngineHandle {
            method: Arc::from(self.method),
            io: self.io,
            dataset_size: self.dataset_size,
            fallback: self.fallback,
            retry: self.retry,
        }
    }
}

/// Runs the batch kernel over one contiguous chunk on the calling thread:
/// resets the thread's I/O shard, times the kernel, collects per-query stats,
/// and snapshots the chunk's physical store traffic.
fn run_batch_chunk(
    kernel: &dyn crate::method::BatchAnswering,
    io: Option<&dyn IoSource>,
    queries: &[Query],
) -> Result<(Vec<EngineAnswer>, IoSnapshot)> {
    if queries.is_empty() {
        return Ok((Vec::new(), IoSnapshot::default()));
    }
    if let Some(io) = io {
        io.reset_thread_io();
    }
    let mut stats = vec![QueryStats::default(); queries.len()];
    // hydra-lint: allow(nondeterministic-source) wall-clock measurement; answers never read it
    let clock = Instant::now();
    // Panic isolation, like the per-query loop: a poisoned batch becomes a
    // typed internal error (answer_batch then reruns the per-query loop,
    // which reproduces serial error semantics).
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        kernel.answer_batch(queries, &mut stats)
    }));
    let answer_sets = match outcome {
        Ok(result) => result?,
        Err(panic) => return Err(Error::Internal(panic_message(panic))),
    };
    let wall_time = clock.elapsed();
    let physical = io.map(|io| io.thread_io_snapshot()).unwrap_or_default();
    debug_assert_eq!(answer_sets.len(), queries.len(), "kernel answered all");
    // Per-query wall time inside a shared pass is ill-defined; attribute the
    // chunk's elapsed time evenly (the amortized per-query cost).
    let per_query_wall = wall_time / queries.len() as u32;
    let answers = answer_sets
        .into_iter()
        .zip(stats)
        .map(|(answers, stats)| EngineAnswer {
            guarantee: answers.guarantee(),
            answers,
            stats,
            wall_time: per_query_wall,
            attempts: 1,
        })
        .collect();
    Ok((answers, physical))
}

/// Renders a payload caught by `catch_unwind` as a readable message.
fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "query panicked".to_string()
    }
}

/// Measures one query on the calling thread: enforces the method's mode and
/// query-kind capabilities, resets the calling thread's I/O shard, times the
/// dyn call, and reconciles store-side traffic into the stats. Used by both
/// the serial [`QueryEngine::answer`] path and the workload workers, so the
/// two produce identical per-query measurements.
fn measure_query(
    method: &dyn AnsweringMethod,
    io: Option<&dyn IoSource>,
    query: &Query,
    fallback: FallbackPolicy,
    retry: RetryPolicy,
) -> Result<EngineAnswer> {
    measure_query_from_attempt(method, io, query, fallback, retry, 0)
}

/// [`measure_query`] with the retry loop's attempt numbering shifted by
/// `base_attempt`: the first attempt announces `base_attempt` through
/// [`IoSource::begin_attempt`], the first retry `base_attempt + 1`, and so
/// on. The serving layer's hedged retries use this to give a speculative
/// re-submission a *different* (but still deterministic) slice of the fault
/// plan than the primary attempt chain — a transient fault that persists
/// through the primary's attempts has cleared by the hedge's. `base_attempt
/// = 0` is exactly [`measure_query`].
fn measure_query_from_attempt(
    method: &dyn AnsweringMethod,
    io: Option<&dyn IoSource>,
    query: &Query,
    fallback: FallbackPolicy,
    retry: RetryPolicy,
    base_attempt: u32,
) -> Result<EngineAnswer> {
    let descriptor = method.descriptor();
    // Range queries are a typed error at the engine boundary: no method in
    // the suite answers them (previously they silently became 1-NN queries).
    query.knn_k(descriptor.name)?;
    // An unsupported mode is a typed error too, unless the caller explicitly
    // opted into the exact fallback.
    let exact_substitute;
    let query = if descriptor.modes.supports(query.mode()) {
        query
    } else {
        match fallback {
            FallbackPolicy::Strict => {
                return Err(Error::unsupported_mode(descriptor.name, query.mode()))
            }
            FallbackPolicy::ExactFallback => {
                exact_substitute = query.clone().with_mode(AnswerMode::Exact);
                &exact_substitute
            }
        }
    };
    let mut attempt: u32 = 1;
    let mut backoff_penalty: u64 = 0;
    loop {
        if let Some(io) = io {
            io.begin_attempt(base_attempt + attempt - 1);
            io.reset_thread_io();
        }
        let mut stats = QueryStats::default();
        // hydra-lint: allow(nondeterministic-source) wall-clock measurement; answers never read it
        let clock = Instant::now();
        // Panic isolation: a poisoned query becomes a typed internal error
        // instead of unwinding through the workload driver.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            method.answer(query, &mut stats)
        }));
        let wall_time = clock.elapsed();
        match outcome {
            Err(panic) => return Err(Error::Internal(panic_message(panic))),
            Ok(Ok(answers)) => {
                if let Some(io) = io {
                    // Methods charge leaf reads through their stats; the store
                    // counters cover raw-file traffic. Keep whichever
                    // accounting path recorded more pages so neither is lost.
                    stats.reconcile_io(io.thread_io_snapshot());
                }
                if backoff_penalty > 0 {
                    // The accumulated backoff is part of this query's cost;
                    // charged after reconciliation so the max-wins rule cannot
                    // absorb it.
                    stats.record_io(0, backoff_penalty, 0);
                }
                return Ok(EngineAnswer {
                    guarantee: answers.guarantee(),
                    answers,
                    stats,
                    wall_time,
                    attempts: attempt,
                });
            }
            Ok(Err(e)) => {
                if e.is_retriable() && attempt < retry.max_attempts {
                    backoff_penalty = backoff_penalty.saturating_add(
                        retry
                            .backoff_pages
                            .checked_shl(attempt - 1)
                            .unwrap_or(u64::MAX),
                    );
                    attempt += 1;
                    continue;
                }
                return Err(e.with_attempts(attempt));
            }
        }
    }
}

/// Measures one intra-parallel query on the calling thread: identical to
/// [`measure_query`] — same mode routing, same I/O reset and reconciliation,
/// same timing placement — except the dyn call goes to the method's
/// [`crate::method::IntraAnswering`] kernel with the resolved worker count.
fn measure_intra_query(
    method: &dyn AnsweringMethod,
    kernel: &dyn crate::method::IntraAnswering,
    io: Option<&dyn IoSource>,
    query: &Query,
    fallback: FallbackPolicy,
    retry: RetryPolicy,
    threads: usize,
) -> Result<EngineAnswer> {
    let descriptor = method.descriptor();
    query.knn_k(descriptor.name)?;
    let exact_substitute;
    let query = if descriptor.modes.supports(query.mode()) {
        query
    } else {
        match fallback {
            FallbackPolicy::Strict => {
                return Err(Error::unsupported_mode(descriptor.name, query.mode()))
            }
            FallbackPolicy::ExactFallback => {
                exact_substitute = query.clone().with_mode(AnswerMode::Exact);
                &exact_substitute
            }
        }
    };
    let mut attempt: u32 = 1;
    let mut backoff_penalty: u64 = 0;
    loop {
        if let Some(io) = io {
            io.begin_attempt(attempt - 1);
            io.reset_thread_io();
        }
        let mut stats = QueryStats::default();
        // hydra-lint: allow(nondeterministic-source) wall-clock measurement; answers never read it
        let clock = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            kernel.answer_intra(query, threads, &mut stats)
        }));
        let wall_time = clock.elapsed();
        match outcome {
            Err(panic) => return Err(Error::Internal(panic_message(panic))),
            Ok(Ok(answers)) => {
                if let Some(io) = io {
                    stats.reconcile_io(io.thread_io_snapshot());
                }
                if backoff_penalty > 0 {
                    stats.record_io(0, backoff_penalty, 0);
                }
                return Ok(EngineAnswer {
                    guarantee: answers.guarantee(),
                    answers,
                    stats,
                    wall_time,
                    attempts: attempt,
                });
            }
            Ok(Err(e)) => {
                if e.is_retriable() && attempt < retry.max_attempts {
                    backoff_penalty = backoff_penalty.saturating_add(
                        retry
                            .backoff_pages
                            .checked_shl(attempt - 1)
                            .unwrap_or(u64::MAX),
                    );
                    attempt += 1;
                    continue;
                }
                return Err(e.with_attempts(attempt));
            }
        }
    }
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("method", &self.descriptor().name)
            .field("dataset_size", &self.dataset_size)
            .field("queries_answered", &self.queries_answered)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnHeap;
    use crate::method::MethodDescriptor;
    use crate::series::{Dataset, Series};

    /// A brute-force method that examines every series.
    struct BruteForce {
        data: Dataset,
        io: Arc<FakeIo>,
    }

    impl AnsweringMethod for BruteForce {
        fn descriptor(&self) -> MethodDescriptor {
            MethodDescriptor {
                name: "BruteForce",
                representation: "raw",
                is_index: false,
                modes: crate::method::ModeCapabilities::exact_only(),
            }
        }

        fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
            self.io.record(self.data.len() as u64);
            let mut heap = KnnHeap::new(query.k().unwrap_or(1));
            for (i, s) in self.data.iter().enumerate() {
                stats.record_raw_series_examined(1);
                heap.offer(i, crate::distance::euclidean(query.values(), s.values()));
            }
            Ok(heap.into_answer_set())
        }
    }

    /// A thread-sharded page counter, so workload tests exercise the real
    /// concurrent path of `answer_workload` (an `IoSource` without
    /// thread-scoped counters falls back to the serial loop).
    #[derive(Default)]
    struct FakeIo {
        pages: std::sync::Mutex<std::collections::HashMap<std::thread::ThreadId, u64>>,
    }

    impl FakeIo {
        fn record(&self, pages: u64) {
            *self
                .pages
                .lock()
                .unwrap()
                .entry(std::thread::current().id())
                .or_default() += pages;
        }

        fn snapshot_of(pages: u64) -> IoSnapshot {
            IoSnapshot {
                sequential_pages: pages,
                random_pages: 0,
                bytes_read: pages * 4096,
                bytes_written: 0,
            }
        }
    }

    impl IoSource for FakeIo {
        fn io_snapshot(&self) -> IoSnapshot {
            Self::snapshot_of(self.pages.lock().unwrap().values().sum())
        }

        fn reset_io(&self) {
            self.pages.lock().unwrap().clear();
        }

        fn thread_io_snapshot(&self) -> IoSnapshot {
            let pages = self
                .pages
                .lock()
                .unwrap()
                .get(&std::thread::current().id())
                .copied()
                .unwrap_or(0);
            Self::snapshot_of(pages)
        }

        fn reset_thread_io(&self) {
            self.pages
                .lock()
                .unwrap()
                .remove(&std::thread::current().id());
        }

        fn has_thread_scoped_counters(&self) -> bool {
            true
        }
    }

    fn engine() -> QueryEngine {
        let data = Dataset::from_flat(vec![0.0, 0.0, 1.0, 1.0, 5.0, 5.0, 9.0, 9.0], 2);
        let io = Arc::new(FakeIo::default());
        let size = data.len();
        QueryEngine::new(
            Box::new(BruteForce {
                data,
                io: io.clone(),
            }),
            size,
        )
        .with_io_source(io)
        .with_build_measurement(
            Duration::from_millis(3),
            IoSnapshot {
                bytes_written: 64,
                ..Default::default()
            },
        )
    }

    #[test]
    fn engine_answers_and_aggregates() {
        let mut e = engine();
        assert_eq!(e.descriptor().name, "BruteForce");
        assert_eq!(e.footprint(), None, "scans expose no footprint");
        assert_eq!(e.dataset_size(), 4);
        assert_eq!(e.build_time(), Duration::from_millis(3));
        assert_eq!(e.build_io().bytes_written, 64);

        let q = Query::nearest_neighbor(Series::new(vec![0.9, 0.9]));
        let a = e.answer(&q).unwrap();
        assert_eq!(a.answers.nearest().unwrap().id, 1);
        assert_eq!(a.stats.raw_series_examined, 4);
        // Store-side pages exceed the stats-side zero, so they win.
        assert_eq!(a.stats.sequential_page_accesses, 4);
        assert_eq!(a.stats.bytes_read, 4 * 4096);

        e.answer(&q).unwrap();
        assert_eq!(e.queries_answered(), 2);
        assert_eq!(e.totals().raw_series_examined, 8);
        // Brute force examines everything: zero pruning.
        assert_eq!(e.mean_pruning_ratio(), 0.0);

        e.reset_totals();
        assert_eq!(e.queries_answered(), 0);
        assert_eq!(e.totals().raw_series_examined, 0);
    }

    #[test]
    fn answer_simple_discards_measurements() {
        let mut e = engine();
        let q = Query::nearest_neighbor(Series::new(vec![5.1, 5.1]));
        let ans = e.answer_simple(&q).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 2);
    }

    #[test]
    fn io_reconciliation_prefers_the_larger_recording() {
        /// A method that records more I/O into stats than the store observes.
        struct StatsHeavy;
        impl AnsweringMethod for StatsHeavy {
            fn descriptor(&self) -> MethodDescriptor {
                MethodDescriptor {
                    name: "StatsHeavy",
                    representation: "raw",
                    is_index: false,
                    modes: crate::method::ModeCapabilities::exact_only(),
                }
            }
            fn answer(&self, _q: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
                stats.record_io(100, 10, 1 << 20);
                Ok(AnswerSet::default())
            }
        }
        let io = Arc::new(FakeIo::default());
        let mut e = QueryEngine::new(Box::new(StatsHeavy), 1).with_io_source(io);
        let q = Query::nearest_neighbor(Series::new(vec![0.0]));
        let a = e.answer(&q).unwrap();
        assert_eq!(a.stats.sequential_page_accesses, 100);
        assert_eq!(a.stats.random_page_accesses, 10);
        assert_eq!(a.stats.bytes_read, 1 << 20);
    }

    #[test]
    fn answer_workload_matches_the_serial_loop() {
        let queries: Vec<Query> = [
            [0.9f32, 0.9],
            [5.1, 5.1],
            [0.1, 0.1],
            [8.0, 8.0],
            [1.2, 0.8],
            [4.4, 4.6],
        ]
        .iter()
        .map(|v| Query::nearest_neighbor(Series::new(v.to_vec())))
        .collect();

        let mut serial = engine();
        let serial_answers: Vec<EngineAnswer> =
            queries.iter().map(|q| serial.answer(q).unwrap()).collect();

        let mut parallel = engine();
        let parallel_answers = parallel
            .answer_workload(&queries, Parallelism::Threads(3))
            .unwrap();

        assert_eq!(parallel_answers.len(), queries.len());
        for (s, p) in serial_answers.iter().zip(&parallel_answers) {
            assert_eq!(s.answers, p.answers);
            assert_eq!(s.stats.raw_series_examined, p.stats.raw_series_examined);
            assert_eq!(
                s.stats.sequential_page_accesses,
                p.stats.sequential_page_accesses
            );
            assert_eq!(s.stats.bytes_read, p.stats.bytes_read);
        }
        assert_eq!(parallel.queries_answered(), serial.queries_answered());
        assert_eq!(
            parallel.totals().raw_series_examined,
            serial.totals().raw_series_examined
        );
        assert_eq!(parallel.totals().bytes_read, serial.totals().bytes_read);
    }

    #[test]
    fn answer_workload_serial_fallback_and_empty_workload() {
        let mut e = engine();
        assert!(e
            .answer_workload(&[], Parallelism::Auto)
            .unwrap()
            .is_empty());
        let q = Query::nearest_neighbor(Series::new(vec![0.9, 0.9]));
        let answers = e
            .answer_workload(std::slice::from_ref(&q), Parallelism::Serial)
            .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].answers.nearest().unwrap().id, 1);
        assert_eq!(e.queries_answered(), 1);
    }

    #[test]
    fn answer_workload_reports_the_first_error_in_workload_order() {
        /// Fails on queries whose first value is negative.
        struct Picky;
        impl AnsweringMethod for Picky {
            fn descriptor(&self) -> MethodDescriptor {
                MethodDescriptor {
                    name: "Picky",
                    representation: "raw",
                    is_index: false,
                    modes: crate::method::ModeCapabilities::exact_only(),
                }
            }
            fn answer(&self, q: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
                if q.values()[0] < 0.0 {
                    return Err(crate::Error::EmptyDataset);
                }
                stats.record_raw_series_examined(1);
                Ok(AnswerSet::default())
            }
        }
        let mut e = QueryEngine::new(Box::new(Picky), 1);
        let queries: Vec<Query> = [1.0f32, 2.0, -3.0, 4.0, -5.0]
            .iter()
            .map(|&v| Query::nearest_neighbor(Series::new(vec![v])))
            .collect();
        let err = e.answer_workload(&queries, Parallelism::Threads(2));
        assert!(err.is_err());
        // Exactly the two queries before the first failure were merged.
        assert_eq!(e.queries_answered(), 2);
        assert_eq!(e.totals().raw_series_examined, 2);
    }

    /// A brute-force method with a native batch kernel: one shared "pass"
    /// (one FakeIo recording) answers the whole batch, while each query's
    /// stats keep the full per-query pass the serial path charges.
    struct BatchBruteForce {
        inner: BruteForce,
    }

    impl AnsweringMethod for BatchBruteForce {
        fn descriptor(&self) -> MethodDescriptor {
            self.inner.descriptor()
        }
        fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
            self.inner.answer(query, stats)
        }
        fn batch_answering(&self) -> Option<&dyn crate::method::BatchAnswering> {
            Some(self)
        }
    }

    impl crate::method::BatchAnswering for BatchBruteForce {
        fn answer_batch(
            &self,
            queries: &[Query],
            stats: &mut [QueryStats],
        ) -> Result<Vec<AnswerSet>> {
            let n = self.inner.data.len() as u64;
            // One physical pass for the whole chunk...
            self.inner.io.record(n);
            let mut out = Vec::with_capacity(queries.len());
            for (query, stats) in queries.iter().zip(stats.iter_mut()) {
                let mut heap = KnnHeap::new(query.knn_k("BruteForce")?);
                for (i, s) in self.inner.data.iter().enumerate() {
                    stats.record_raw_series_examined(1);
                    heap.offer(i, crate::distance::euclidean(query.values(), s.values()));
                }
                // ...while every query keeps the logical pass the serial
                // path reconciles into its stats.
                stats.record_io(n, 0, n * 4096);
                out.push(heap.into_answer_set());
            }
            Ok(out)
        }
    }

    fn batch_engine() -> QueryEngine {
        let data = Dataset::from_flat(vec![0.0, 0.0, 1.0, 1.0, 5.0, 5.0, 9.0, 9.0], 2);
        let io = Arc::new(FakeIo::default());
        let size = data.len();
        QueryEngine::new(
            Box::new(BatchBruteForce {
                inner: BruteForce {
                    data,
                    io: io.clone(),
                },
            }),
            size,
        )
        .with_io_source(io)
    }

    fn batch_queries() -> Vec<Query> {
        [
            [0.9f32, 0.9],
            [5.1, 5.1],
            [0.1, 0.1],
            [8.0, 8.0],
            [4.4, 4.6],
        ]
        .iter()
        .map(|v| Query::nearest_neighbor(Series::new(v.to_vec())))
        .collect()
    }

    #[test]
    fn answer_batch_matches_the_serial_loop_and_amortizes_physical_io() {
        let queries = batch_queries();
        let mut serial = batch_engine();
        let serial_answers: Vec<EngineAnswer> =
            queries.iter().map(|q| serial.answer(q).unwrap()).collect();

        for threads in [Parallelism::Serial, Parallelism::Threads(2)] {
            let mut batched = batch_engine();
            let batch_answers = batched.answer_batch(&queries, threads).unwrap();
            assert_eq!(batch_answers.len(), queries.len());
            for (s, b) in serial_answers.iter().zip(&batch_answers) {
                assert_eq!(s.answers, b.answers);
                assert_eq!(s.stats.raw_series_examined, b.stats.raw_series_examined);
                assert_eq!(
                    s.stats.sequential_page_accesses,
                    b.stats.sequential_page_accesses
                );
                assert_eq!(s.stats.bytes_read, b.stats.bytes_read);
            }
            assert_eq!(batched.queries_answered(), queries.len() as u64);
            assert_eq!(
                batched.totals().raw_series_examined,
                serial.totals().raw_series_examined
            );
            // Physical traffic: one pass per chunk, not one per query.
            let physical = batched.last_batch_io().expect("a native kernel ran");
            let chunks = match threads {
                Parallelism::Serial => 1,
                _ => 2,
            };
            assert_eq!(physical.sequential_pages, 4 * chunks);
            // Each query's logical stats still carry the full pass.
            assert_eq!(batch_answers[0].stats.sequential_page_accesses, 4);
        }
    }

    #[test]
    fn answer_batch_without_a_kernel_falls_back_to_the_per_query_loop() {
        let queries = batch_queries();
        let mut plain = engine();
        let answers = plain
            .answer_batch(&queries, Parallelism::Threads(2))
            .unwrap();
        assert_eq!(answers.len(), queries.len());
        assert_eq!(answers[0].answers.nearest().unwrap().id, 1);
        assert_eq!(plain.last_batch_io(), None, "no native kernel ran");
        assert_eq!(plain.queries_answered(), queries.len() as u64);
    }

    #[test]
    fn answer_batch_empty_batch_is_a_no_op() {
        let mut e = batch_engine();
        assert!(e.answer_batch(&[], Parallelism::Auto).unwrap().is_empty());
        assert_eq!(e.queries_answered(), 0);
        assert_eq!(e.last_batch_io(), None);
    }

    #[test]
    fn answer_batch_routes_unsupported_modes_like_the_serial_loop() {
        // Strict: the queries before the first unsupported mode are answered
        // and merged, then the typed error surfaces — exactly the per-query
        // path's behaviour.
        let mut e = batch_engine();
        let mut queries = batch_queries();
        queries[2] = queries[2].clone().with_mode(AnswerMode::NgApproximate);
        match e.answer_batch(&queries, Parallelism::Serial) {
            Err(Error::UnsupportedMode { method, mode }) => {
                assert_eq!(method, "BruteForce");
                assert_eq!(mode, AnswerMode::NgApproximate);
            }
            other => panic!("expected UnsupportedMode, got {other:?}"),
        }
        assert_eq!(e.queries_answered(), 2, "the prefix was answered");
        assert_eq!(e.totals().raw_series_examined, 8);
        assert!(
            e.last_batch_io().is_some(),
            "the kernel ran over the answered prefix"
        );

        // With the FIRST query rejected nothing reaches the kernel, so no
        // batch traffic is reported.
        let mut e = batch_engine();
        let mut queries = batch_queries();
        queries[0] = queries[0].clone().with_mode(AnswerMode::NgApproximate);
        assert!(e.answer_batch(&queries, Parallelism::Serial).is_err());
        assert_eq!(e.queries_answered(), 0);
        assert_eq!(e.last_batch_io(), None, "no kernel work ran");

        // ExactFallback: the whole batch runs, substitutions visibly exact.
        let mut e = batch_engine().with_fallback_policy(FallbackPolicy::ExactFallback);
        let answers = e.answer_batch(&queries, Parallelism::Serial).unwrap();
        assert_eq!(answers.len(), queries.len());
        assert_eq!(answers[2].guarantee, Guarantee::Exact);

        // Range queries are typed errors after the prefix, like the serial
        // loop.
        let mut e = batch_engine();
        let mut queries = batch_queries();
        queries[1] = Query::range(Series::new(vec![0.0, 0.0]), 1.0);
        assert!(matches!(
            e.answer_batch(&queries, Parallelism::Serial),
            Err(Error::UnsupportedQuery { .. })
        ));
        assert_eq!(e.queries_answered(), 1);
    }

    #[test]
    fn pruning_ratio_reflects_partial_examination() {
        /// Pretends to examine one series per query over a 10-series dataset.
        struct Pruner;
        impl AnsweringMethod for Pruner {
            fn descriptor(&self) -> MethodDescriptor {
                MethodDescriptor {
                    name: "Pruner",
                    representation: "raw",
                    is_index: true,
                    modes: crate::method::ModeCapabilities::exact_only(),
                }
            }
            fn answer(&self, _q: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
                stats.record_raw_series_examined(1);
                Ok(AnswerSet::default())
            }
        }
        let mut e = QueryEngine::new(Box::new(Pruner), 10);
        let q = Query::nearest_neighbor(Series::new(vec![0.0]));
        e.answer(&q).unwrap();
        e.answer(&q).unwrap();
        assert!((e.mean_pruning_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn unsupported_modes_are_typed_errors_under_the_strict_policy() {
        let mut e = engine();
        let q = Query::nearest_neighbor(Series::new(vec![0.9, 0.9]))
            .with_mode(AnswerMode::NgApproximate);
        match e.answer(&q) {
            Err(Error::UnsupportedMode { method, mode }) => {
                assert_eq!(method, "BruteForce");
                assert_eq!(mode, AnswerMode::NgApproximate);
            }
            other => panic!("expected UnsupportedMode, got {other:?}"),
        }
        // The failed query is not counted.
        assert_eq!(e.queries_answered(), 0);
        // The workload driver surfaces the same error.
        assert!(matches!(
            e.answer_workload(std::slice::from_ref(&q), Parallelism::Threads(2)),
            Err(Error::UnsupportedMode { .. })
        ));
    }

    #[test]
    fn exact_fallback_answers_exactly_and_says_so() {
        let mut e = engine().with_fallback_policy(FallbackPolicy::ExactFallback);
        assert_eq!(e.fallback_policy(), FallbackPolicy::ExactFallback);
        let q = Query::nearest_neighbor(Series::new(vec![0.9, 0.9]))
            .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.5 });
        let a = e.answer(&q).unwrap();
        assert_eq!(a.guarantee, Guarantee::Exact, "the substitution is visible");
        assert_eq!(a.answers.nearest().unwrap().id, 1);
        assert_eq!(a.stats.raw_series_examined, 4, "fell back to a full scan");
    }

    #[test]
    fn range_queries_are_typed_errors_at_the_engine_boundary() {
        let mut e = engine();
        let q = Query::range(Series::new(vec![0.9, 0.9]), 2.0);
        match e.answer(&q) {
            Err(Error::UnsupportedQuery { method, reason }) => {
                assert_eq!(method, "BruteForce");
                assert!(reason.contains("range"), "{reason}");
            }
            other => panic!("expected UnsupportedQuery, got {other:?}"),
        }
        assert_eq!(e.queries_answered(), 0);
    }

    #[test]
    fn handle_answers_match_the_engine_bit_for_bit() {
        let mut e = engine();
        let queries: Vec<Query> = [[0.9f32, 0.9], [5.1, 5.1], [8.0, 8.0]]
            .iter()
            .map(|v| Query::nearest_neighbor(Series::new(v.to_vec())))
            .collect();
        let engine_answers: Vec<EngineAnswer> =
            queries.iter().map(|q| e.answer(q).unwrap()).collect();

        let handle = engine().into_handle();
        assert_eq!(handle.descriptor().name, "BruteForce");
        assert_eq!(handle.dataset_size(), 4);
        let clone = handle.clone();
        for (q, expected) in queries.iter().zip(&engine_answers) {
            for h in [&handle, &clone] {
                let a = h.answer(q).unwrap();
                assert_eq!(a.answers, expected.answers);
                assert_eq!(a.guarantee, expected.guarantee);
                assert_eq!(
                    a.stats.raw_series_examined,
                    expected.stats.raw_series_examined
                );
                assert_eq!(
                    a.stats.sequential_page_accesses,
                    expected.stats.sequential_page_accesses
                );
                assert_eq!(a.stats.bytes_read, expected.stats.bytes_read);
                assert_eq!(a.attempts, expected.attempts);
            }
        }
        // The handle keeps the engine's mode routing: unsupported modes stay
        // typed errors under the default strict policy.
        let q = Query::nearest_neighbor(Series::new(vec![0.9, 0.9]))
            .with_mode(AnswerMode::NgApproximate);
        assert!(matches!(
            handle.answer(&q),
            Err(Error::UnsupportedMode { .. })
        ));
    }

    #[test]
    fn engine_answers_carry_the_guarantee_tag() {
        let mut e = engine();
        let q = Query::nearest_neighbor(Series::new(vec![0.9, 0.9]));
        let a = e.answer(&q).unwrap();
        assert_eq!(a.guarantee, Guarantee::Exact);
        assert_eq!(a.answers.guarantee(), Guarantee::Exact);
    }
}

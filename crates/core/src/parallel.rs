//! Thread-pool primitives for parallel workload execution and index builds.
//!
//! The paper evaluates every method single-threaded, but data series search is
//! embarrassingly parallel across queries and across index subtrees (ParIS /
//! MESSI, Hercules). This module provides the small, dependency-free building
//! blocks the rest of the suite parallelizes with:
//!
//! * [`Parallelism`] — how many worker threads a workload or build may use,
//!   with an environment override (`HYDRA_THREADS`);
//! * [`map_indexed`] — a work-queue over `0..count` (dynamic load balancing,
//!   results returned in index order);
//! * [`map_chunks`] — contiguous range partitioning (static load balancing,
//!   chunk outputs concatenated in chunk order, preserving index order);
//! * [`SharedBsf`] — a shared atomic best-so-far (f64 bit patterns, monotone
//!   decrease CAS) that intra-query workers prune against.
//!
//! Everything is built on `std::thread::scope`, so borrowed data (datasets,
//! built indexes) can be shared without `'static` bounds or extra `Arc`s, and
//! results are always merged **deterministically** in index order regardless
//! of which thread finished first.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A shared best-so-far pruning threshold for intra-query workers — the
/// MESSI/ParIS mechanism that lets every worker abandon against the globally
/// best candidate found so far, not just its own.
///
/// The value is an `f64` stored as its bit pattern in an `AtomicU64` and
/// updated with a monotone-decrease CAS loop: [`SharedBsf::update_min`] only
/// ever replaces the stored value with a strictly smaller one, so concurrent
/// updates can never lose the minimum (a failed CAS re-reads and re-compares;
/// a racing smaller value simply wins). NaN candidates never compare smaller
/// and are therefore never stored.
///
/// A stale read is always *safe*: a worker that observes an older (larger)
/// value abandons less eagerly, never wrongly — exactness does not depend on
/// propagation timing. Intra-query kernels exploit this by reading with
/// `Relaxed` ordering on the hot path.
#[derive(Debug)]
pub struct SharedBsf(AtomicU64);

impl SharedBsf {
    /// Creates a shared threshold starting at `initial` (NaN is treated as
    /// `+inf`, i.e. "no candidate yet").
    pub fn new(initial: f64) -> Self {
        let v = if initial.is_nan() {
            f64::INFINITY
        } else {
            initial
        };
        Self(AtomicU64::new(v.to_bits()))
    }

    /// The current best-so-far value (possibly momentarily stale under
    /// concurrent updates, which is always safe — see the type docs).
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Lowers the stored value to `candidate` if it is strictly smaller,
    /// retrying on contention. NaN candidates are ignored.
    pub fn update_min(&self, candidate: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        // `NaN < x` is false, so a NaN candidate never enters the loop.
        while candidate < f64::from_bits(current) {
            match self.0.compare_exchange_weak(
                current,
                candidate.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

/// How work is spread across threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// One item at a time on the calling thread.
    Serial,
    /// A fixed number of worker threads (clamped to at least 1).
    Threads(usize),
    /// One worker per CPU reported by the OS.
    Auto,
}

impl Parallelism {
    /// The number of worker threads this setting resolves to (always ≥ 1).
    pub fn worker_threads(&self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => (*n).max(1),
            Parallelism::Auto => available_threads(),
        }
    }

    /// Reads the setting from the `HYDRA_THREADS` environment variable:
    /// unset or `1` means serial, `0` means one thread per CPU, any other
    /// number is a fixed thread count. An unparseable value falls back to
    /// serial with a warning on stderr — silently ignoring a typo would
    /// record measurements under the wrong configuration.
    pub fn from_env() -> Self {
        let Ok(raw) = std::env::var("HYDRA_THREADS") else {
            return Parallelism::Serial;
        };
        match raw.trim().parse::<usize>() {
            Ok(1) => Parallelism::Serial,
            Ok(0) => Parallelism::Auto,
            Ok(n) => Parallelism::Threads(n),
            Err(_) => {
                eprintln!(
                    "warning: ignoring unparseable HYDRA_THREADS={raw:?}; running serial \
                     (expected a number; 0 = one worker per CPU)"
                );
                Parallelism::Serial
            }
        }
    }
}

/// The number of CPUs available to this process (1 if undetectable).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a thread-count knob: `0` means one thread per CPU, anything else
/// is taken literally (with a floor of 1).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Splits `0..n` into at most `parts` contiguous, near-equal, non-empty
/// ranges covering `0..n` in order.
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Applies `f` to every index in `0..count` on up to `threads` workers pulling
/// from a shared queue, and returns the results **in index order**.
///
/// Use this when per-item cost is uneven (index subtree builds, queries of
/// varying difficulty); the atomic queue balances the load dynamically while
/// the ordered merge keeps the output deterministic.
///
/// # Panics
/// Re-raises a panic from `f` with its original payload once the workers have
/// been joined (the queue always drains, so no worker blocks on a panicked
/// peer).
pub fn map_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        produced.push((i, f(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(produced) => {
                    for (i, value) in produced {
                        slots[i] = Some(value);
                    }
                }
                // Preserve the original panic payload (message) for the
                // caller instead of a generic join error.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        // hydra-lint: allow(lib-unwrap) map_indexed fills every slot exactly once
        .map(|s| s.expect("every index is claimed exactly once"))
        .collect()
}

/// Consumes `items`, applying `f(index, item)` on up to `threads` workers
/// pulling from a shared queue, and returns the results **in item order**.
///
/// The by-value variant of [`map_indexed`]: use it when the work items are
/// expensive to clone (index-build buckets). Each item is taken out of its
/// slot exactly once — the atomic queue guarantees an index is claimed by a
/// single worker — so no item is ever copied.
pub fn map_items<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    if threads.clamp(1, items.len().max(1)) <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new(Some(item)))
        .collect();
    map_indexed(slots.len(), threads, |i| {
        let item = slots[i]
            .lock()
            // hydra-lint: allow(lib-unwrap) take() cannot panic, so the lock cannot poison
            .expect("item mutex is never poisoned: take() cannot panic")
            .take()
            // hydra-lint: allow(lib-unwrap) each index is claimed by exactly one worker
            .expect("every item is taken exactly once");
        f(i, item)
    })
}

/// Applies `f` to contiguous chunks of `0..n` (one chunk per worker) and
/// concatenates the chunk outputs in chunk order, preserving index order.
///
/// Use this for uniform-cost streams (summarizing every series of a dataset):
/// static partitioning avoids the queue, and the in-order concatenation means
/// the result is identical to the serial `f(0..n)`.
pub fn map_chunks<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let ranges = split_ranges(n, threads.max(1));
    if ranges.len() <= 1 {
        return ranges.into_iter().flat_map(&f).collect();
    }
    let mut outputs: Vec<Vec<T>> =
        map_indexed(ranges.len(), ranges.len(), |i| f(ranges[i].clone()));
    let mut merged = Vec::with_capacity(n);
    for chunk in outputs.iter_mut() {
        merged.append(chunk);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::Serial.worker_threads(), 1);
        assert_eq!(Parallelism::Threads(4).worker_threads(), 4);
        assert_eq!(Parallelism::Threads(0).worker_threads(), 1);
        assert!(Parallelism::Auto.worker_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn split_ranges_covers_everything_in_order() {
        for (n, parts) in [(10, 3), (7, 7), (5, 9), (1, 1), (100, 8)] {
            let ranges = split_ranges(n, parts);
            assert!(ranges.len() <= parts);
            let flattened: Vec<usize> = ranges.iter().cloned().flatten().collect();
            assert_eq!(flattened, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
        assert!(split_ranges(0, 4).is_empty());
    }

    #[test]
    fn map_indexed_returns_results_in_index_order() {
        let squares = map_indexed(100, 4, |i| i * i);
        assert_eq!(squares.len(), 100);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
        // Serial fallback path.
        assert_eq!(map_indexed(3, 1, |i| i + 1), vec![1, 2, 3]);
        assert!(map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn map_indexed_visits_every_index_exactly_once() {
        let counter = AtomicU64::new(0);
        let _ = map_indexed(257, 8, |_| counter.fetch_add(1, Ordering::SeqCst));
        assert_eq!(counter.load(Ordering::SeqCst), 257);
    }

    #[test]
    fn map_items_consumes_in_order() {
        let items: Vec<String> = (0..37).map(|i| format!("item-{i}")).collect();
        let expected: Vec<String> = items.iter().map(|s| format!("{s}!")).collect();
        let got = map_items(items.clone(), 4, |i, item| {
            assert_eq!(item, format!("item-{i}"));
            format!("{item}!")
        });
        assert_eq!(got, expected);
        // Serial fallback path.
        assert_eq!(map_items(items, 1, |_, item| format!("{item}!")), expected);
        assert!(map_items(Vec::<u8>::new(), 4, |_, b| b).is_empty());
    }

    #[test]
    fn map_chunks_matches_serial_order() {
        let expected: Vec<usize> = (0..53).map(|i| i * 3).collect();
        let got = map_chunks(53, 4, |range| range.map(|i| i * 3).collect());
        assert_eq!(got, expected);
        let got = map_chunks(53, 1, |range| range.map(|i| i * 3).collect());
        assert_eq!(got, expected);
        assert!(map_chunks(0, 4, |r| r.collect::<Vec<_>>()).is_empty());
    }

    #[test]
    fn shared_bsf_basic_semantics() {
        let bsf = SharedBsf::new(f64::INFINITY);
        assert_eq!(bsf.get(), f64::INFINITY);
        bsf.update_min(3.0);
        assert_eq!(bsf.get(), 3.0);
        // Larger and NaN candidates never overwrite a smaller value.
        bsf.update_min(4.0);
        bsf.update_min(f64::NAN);
        assert_eq!(bsf.get(), 3.0);
        bsf.update_min(0.5);
        assert_eq!(bsf.get(), 0.5);
        // A NaN initial value means "no candidate yet".
        let bsf = SharedBsf::new(f64::NAN);
        assert_eq!(bsf.get(), f64::INFINITY);
    }

    /// Randomized oracle: hammer one `SharedBsf` from many threads with
    /// seeded pseudo-random values (including duplicates and NaN) and check
    /// the final value is exactly the serial minimum — concurrent
    /// monotone-CAS updates must never lose the minimum.
    #[test]
    fn shared_bsf_never_loses_the_minimum_under_concurrency() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5_000;
        let bsf = SharedBsf::new(f64::INFINITY);
        let value_of = |thread: u64, i: u64| -> f64 {
            let mut x = thread
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(i)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x ^= x >> 33;
            if x.is_multiple_of(97) {
                f64::NAN
            } else {
                (x % 1_000_000) as f64 / 1000.0
            }
        };
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let bsf = &bsf;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        bsf.update_min(value_of(t, i));
                    }
                });
            }
        });
        let serial_min = (0..THREADS)
            .flat_map(|t| (0..PER_THREAD).map(move |i| value_of(t, i)))
            .filter(|v| !v.is_nan())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(bsf.get().to_bits(), serial_min.to_bits());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_with_their_payload() {
        let _ = map_indexed(8, 2, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}

//! The common interface implemented by every similarity search method.
//!
//! Each of the paper's ten methods — whether it is a sequential scan, a
//! multi-step filter or a pre-built index — answers whole-matching k-NN
//! queries in the [`AnswerMode`]s its [`ModeCapabilities`] declare. The
//! harness drives all of them through [`AnsweringMethod`]; methods that build
//! a persistent structure additionally implement [`ExactIndex`] and report
//! their footprint through [`IndexFootprint`].

use crate::knn::AnswerSet;
use crate::query::{AnswerMode, Query};
use crate::series::Dataset;
use crate::stats::QueryStats;
use crate::Result;

/// The set of [`AnswerMode`]s a method can answer, declared on its
/// [`MethodDescriptor`] and enforced at the engine boundary (a mode outside
/// the set is a typed [`crate::Error::UnsupportedMode`], never a silent exact
/// fallback).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModeCapabilities {
    /// Exact search (every method in the suite supports it).
    pub exact: bool,
    /// ng-approximate (single covering leaf) search.
    pub ng_approximate: bool,
    /// ε-approximate search (relaxed-pruning frontier traversal).
    pub epsilon_approximate: bool,
    /// δ-ε-approximate search (probabilistically relaxed ε search).
    pub delta_epsilon: bool,
}

impl ModeCapabilities {
    /// Exact search only (the scans and multi-step filters).
    pub const fn exact_only() -> Self {
        Self {
            exact: true,
            ng_approximate: false,
            epsilon_approximate: false,
            delta_epsilon: false,
        }
    }

    /// Every mode (the tree indexes).
    pub const fn all() -> Self {
        Self {
            exact: true,
            ng_approximate: true,
            epsilon_approximate: true,
            delta_epsilon: true,
        }
    }

    /// Whether queries in `mode` are answerable.
    pub fn supports(&self, mode: AnswerMode) -> bool {
        match mode {
            AnswerMode::Exact => self.exact,
            AnswerMode::NgApproximate => self.ng_approximate,
            AnswerMode::EpsilonApproximate { .. } => self.epsilon_approximate,
            AnswerMode::DeltaEpsilon { .. } => self.delta_epsilon,
        }
    }

    /// Whether any approximate mode is supported.
    pub fn any_approximate(&self) -> bool {
        self.ng_approximate || self.epsilon_approximate || self.delta_epsilon
    }
}

/// Static description of a method, mirroring Table 1 of the paper (extended
/// with the answering-mode capabilities of the sequel study).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodDescriptor {
    /// Canonical method name (e.g. `"iSAX2+"`, `"UCR-Suite"`).
    pub name: &'static str,
    /// The summarization / representation the method relies on
    /// (e.g. `"iSAX"`, `"EAPCA"`, `"raw"`).
    pub representation: &'static str,
    /// Whether the method builds a persistent index structure
    /// (false for sequential / multi-step scans).
    pub is_index: bool,
    /// The answering modes the method supports.
    pub modes: ModeCapabilities,
}

/// Options that control index construction, common across methods.
///
/// Not every method uses every knob: sequential scans ignore all of them, and
/// the leaf capacity is the paper's single most critical parameter (its
/// Figure 2 is devoted to tuning it per method).
#[derive(Clone, Debug, PartialEq)]
pub struct BuildOptions {
    /// Maximum number of series an index leaf may hold before splitting.
    pub leaf_capacity: usize,
    /// Number of segments / coefficients used by fixed-size summarizations
    /// (the paper fixes this to 16 for all methods).
    pub segments: usize,
    /// Alphabet size (cardinality) for symbolic summarizations
    /// (iSAX default 256, SFA tuned to 8 in the paper).
    pub alphabet_size: usize,
    /// Memory budget, in bytes, available for build-time buffering.
    pub buffer_bytes: usize,
    /// Sample size used when a method learns breakpoints / quantization
    /// intervals from the data (SFA, VA+file, M-tree sampling).
    pub train_samples: usize,
    /// Number of worker threads index construction may use: `1` (the default)
    /// builds serially, `0` uses one thread per CPU, any other value is a
    /// fixed count. Tree methods guarantee the built index is identical for
    /// every thread count.
    pub build_threads: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            leaf_capacity: 100,
            segments: 16,
            alphabet_size: 256,
            buffer_bytes: 256 << 20,
            train_samples: 1000,
            build_threads: 1,
        }
    }
}

impl BuildOptions {
    /// Sets the leaf capacity.
    pub fn with_leaf_capacity(mut self, leaf_capacity: usize) -> Self {
        self.leaf_capacity = leaf_capacity;
        self
    }

    /// Sets the number of segments / coefficients.
    pub fn with_segments(mut self, segments: usize) -> Self {
        self.segments = segments;
        self
    }

    /// Sets the alphabet size.
    pub fn with_alphabet_size(mut self, alphabet_size: usize) -> Self {
        self.alphabet_size = alphabet_size;
        self
    }

    /// Sets the build buffer budget in bytes.
    pub fn with_buffer_bytes(mut self, buffer_bytes: usize) -> Self {
        self.buffer_bytes = buffer_bytes;
        self
    }

    /// Sets the number of training samples for learned quantizations.
    pub fn with_train_samples(mut self, train_samples: usize) -> Self {
        self.train_samples = train_samples;
        self
    }

    /// Sets the number of index-construction worker threads (`0` = one per
    /// CPU, `1` = serial).
    pub fn with_build_threads(mut self, build_threads: usize) -> Self {
        self.build_threads = build_threads;
        self
    }

    /// Validates the options against a dataset's series length.
    pub fn validate(&self, series_length: usize) -> Result<()> {
        if self.leaf_capacity == 0 {
            return Err(crate::Error::invalid_parameter(
                "leaf_capacity",
                "must be positive",
            ));
        }
        if self.segments == 0 {
            return Err(crate::Error::invalid_parameter(
                "segments",
                "must be positive",
            ));
        }
        if self.segments > series_length {
            return Err(crate::Error::invalid_parameter(
                "segments",
                format!("cannot exceed series length {series_length}"),
            ));
        }
        if self.alphabet_size < 2 {
            return Err(crate::Error::invalid_parameter(
                "alphabet_size",
                "must be at least 2",
            ));
        }
        Ok(())
    }
}

/// Structural footprint of an index, mirroring the measures of the paper's
/// Figure 8: node counts, memory / disk sizes, and leaf statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IndexFootprint {
    /// Total number of nodes (internal + leaf).
    pub total_nodes: usize,
    /// Number of leaf nodes.
    pub leaf_nodes: usize,
    /// Bytes of main memory occupied by the index structure (excluding raw data).
    pub memory_bytes: usize,
    /// Bytes occupied on (simulated) disk by index payloads.
    pub disk_bytes: usize,
    /// Fill factor of every leaf, as a fraction of the leaf capacity in `[0, 1]`.
    pub leaf_fill_factors: Vec<f64>,
    /// Depth of every leaf (root has depth 0).
    pub leaf_depths: Vec<usize>,
}

impl IndexFootprint {
    /// Mean leaf fill factor, or 0 if there are no leaves.
    pub fn mean_fill_factor(&self) -> f64 {
        if self.leaf_fill_factors.is_empty() {
            0.0
        } else {
            self.leaf_fill_factors.iter().sum::<f64>() / self.leaf_fill_factors.len() as f64
        }
    }

    /// Median leaf fill factor, or 0 if there are no leaves.
    pub fn median_fill_factor(&self) -> f64 {
        if self.leaf_fill_factors.is_empty() {
            return 0.0;
        }
        let mut v = self.leaf_fill_factors.clone();
        // total_cmp: a NaN fill factor (a degenerate leaf) must not scramble
        // the sort and with it which element lands in the middle.
        v.sort_by(|a, b| a.total_cmp(b));
        let mid = v.len() / 2;
        if v.len() % 2 == 1 {
            v[mid]
        } else {
            (v[mid - 1] + v[mid]) / 2.0
        }
    }

    /// Maximum leaf depth, or 0 if there are no leaves.
    pub fn max_leaf_depth(&self) -> usize {
        self.leaf_depths.iter().copied().max().unwrap_or(0)
    }

    /// Mean leaf depth, or 0 if there are no leaves.
    pub fn mean_leaf_depth(&self) -> f64 {
        if self.leaf_depths.is_empty() {
            0.0
        } else {
            self.leaf_depths.iter().sum::<usize>() as f64 / self.leaf_depths.len() as f64
        }
    }
}

/// A method able to answer whole-matching similarity queries.
///
/// The query's [`AnswerMode`] selects what `answer` must deliver: in
/// [`AnswerMode::Exact`] it returns the *exact* answer set (the true k
/// nearest neighbours — the invariant validated throughout the test suite by
/// comparison against the brute-force scan); in the approximate modes it
/// returns a set tagged with the [`crate::knn::Guarantee`] it satisfies.
/// Queries in a mode outside [`MethodDescriptor::modes`] are rejected with a
/// typed [`crate::Error::UnsupportedMode`].
///
/// The trait is dyn-compatible: the engine and the bench registry drive all
/// ten methods of the paper uniformly as `Box<dyn AnsweringMethod>`.
///
/// `Send + Sync` are supertraits so that every built method can be shared
/// across the worker threads of [`crate::engine::QueryEngine::answer_workload`]
/// by reference: `answer` takes `&self`, and any interior state a method needs
/// must therefore be thread-safe by construction.
pub trait AnsweringMethod: Send + Sync {
    /// Static description of the method (Table 1 row).
    fn descriptor(&self) -> MethodDescriptor;

    /// Answers a query in its requested mode, recording work counters into
    /// `stats`.
    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet>;

    /// Answers a query, discarding statistics.
    fn answer_simple(&self, query: &Query) -> Result<AnswerSet> {
        let mut stats = QueryStats::default();
        self.answer(query, &mut stats)
    }

    /// The structural footprint, for methods that build an index.
    ///
    /// Sequential and multi-step scans return `None` (the default); index
    /// methods override this to expose [`ExactIndex::footprint`] through the
    /// trait object.
    fn index_footprint(&self) -> Option<IndexFootprint> {
        None
    }

    /// The method's native batch kernel, when it has one.
    ///
    /// The default is `None`: [`crate::engine::QueryEngine::answer_batch`]
    /// then answers the batch through the per-query loop, so every method
    /// keeps working unchanged. Methods that can amortize one data pass
    /// across a batch (the scans, the VA+file filter sweep, the ADS+ SIMS
    /// summary sweep) override this to return `Some(self)`.
    fn batch_answering(&self) -> Option<&dyn BatchAnswering> {
        None
    }

    /// The method's native intra-query kernel, when it has one.
    ///
    /// The default is `None`: [`crate::engine::QueryEngine::answer_intra`]
    /// then answers on the calling thread exactly like
    /// [`QueryEngine::answer`](crate::engine::QueryEngine::answer), so every
    /// method keeps working unchanged. Methods whose per-query work splits
    /// (the scans, the summary sweeps, tree leaf refinement) override this
    /// to return `Some(self)`.
    fn intra_answering(&self) -> Option<&dyn IntraAnswering> {
        None
    }
}

/// The opt-in intra-query parallel answering capability: several worker
/// threads cooperate on **one** query (MESSI/ParIS-style), sharing a
/// best-so-far through [`crate::parallel::SharedBsf`].
///
/// # Contract (enforced by `tests/intra_query_agreement.rs`)
///
/// For every supported [`AnswerMode`], thread count and dispatch kernel, the
/// returned `AnswerSet` (answers *and* guarantee) and the counters written
/// into `stats` must be **bit-identical** to what
/// [`AnsweringMethod::answer`] produces for the same query. Only the
/// wall-clock time fields may differ. Implementations achieve this by
/// splitting the threshold-independent work (summary sweeps), or by letting
/// workers race ahead under shared-bsf thresholds while recording
/// [`crate::knn::Outcome`]s that a serial replay pass — the one that touches
/// `stats` and the counted store — resolves against the serial thresholds
/// (see [`crate::knn::replay_outcome`]).
///
/// Implementations may assume the engine has already routed modes, but must
/// validate lengths and dataset emptiness exactly like their serial path.
/// `threads` is the resolved worker count (≥ 2; the engine answers serially
/// otherwise).
pub trait IntraAnswering: Send + Sync {
    /// Answers one query with `threads` cooperating workers, recording the
    /// serial path's exact logical work counters into `stats`.
    fn answer_intra(
        &self,
        query: &Query,
        threads: usize,
        stats: &mut QueryStats,
    ) -> Result<AnswerSet>;
}

/// The opt-in batched answering capability: one shared data pass answers a
/// whole batch of queries.
///
/// The paper's cost model is dominated by data passes — a scan pays one full
/// sequential sweep *per query*, and the summary-array methods pay one
/// summary sweep per query. A method that can amortize that pass across Q
/// queries implements this trait and exposes it through
/// [`AnsweringMethod::batch_answering`]; methods without a native batch
/// kernel simply inherit the default (`None`) and the engine falls back to
/// the per-query loop.
///
/// # Contract (enforced by `tests/batch_agreement.rs`)
///
/// For every query `i`, the returned `AnswerSet` **and** the counters written
/// into `stats[i]` must be bit-identical to what the engine's serial
/// per-query path produces for `queries[i]` — including the store-reconciled
/// I/O attribution (see [`crate::stats::QueryStats::reconcile_io`]). Only the
/// wall-clock time fields may differ. The kernel must therefore:
///
/// * keep each query's best-so-far evolution independent and in the same
///   candidate order as the serial code path;
/// * self-attribute per-query *logical* I/O (the pages the query would have
///   cost on its own), leaving the shared pass's *physical* traffic on the
///   store counters for the engine to observe at batch scope;
/// * invalidate the simulated disk head before any per-query private read
///   phase, mirroring the engine's per-query counter reset.
///
/// Implementations may assume the engine has already routed modes (every
/// query's [`AnswerMode`] is within the method's capabilities) but must still
/// validate lengths and dataset emptiness; any error makes the engine rerun
/// the batch through the per-query loop, which reproduces the serial error
/// semantics exactly.
pub trait BatchAnswering: Send + Sync {
    /// Answers all `queries` in one shared pass, writing query `i`'s work
    /// counters into `stats[i]`.
    ///
    /// `stats` has the same length as `queries` (zero-initialized by the
    /// engine).
    fn answer_batch(&self, queries: &[Query], stats: &mut [QueryStats]) -> Result<Vec<AnswerSet>>;
}

/// Validates that every query of a batch has length `expected`, returning
/// the serial path's typed [`crate::Error::LengthMismatch`] for the first
/// mismatch in batch order. Part of the shared batch-kernel prelude, so the
/// five native kernels cannot drift apart in their validation.
pub fn batch_expect_length(queries: &[Query], expected: usize) -> Result<()> {
    for query in queries {
        if query.len() != expected {
            return Err(crate::Error::LengthMismatch {
                expected,
                actual: query.len(),
            });
        }
    }
    Ok(())
}

/// Validates that every query of a batch is an exact-mode query, returning
/// the serial path's typed [`crate::Error::UnsupportedMode`] (naming
/// `method`) for the first non-exact query in batch order. Used by the
/// exact-only scans' batch kernels.
pub fn batch_expect_exact(queries: &[Query], method: &'static str) -> Result<()> {
    for query in queries {
        if !query.mode().is_exact() {
            return Err(crate::Error::unsupported_mode(method, query.mode()));
        }
    }
    Ok(())
}

/// Collects the `k` of every k-NN query of a batch, returning the typed
/// [`crate::Error::UnsupportedQuery`] (naming `method`) for the first range
/// query in batch order.
pub fn batch_knn_ks(queries: &[Query], method: &'static str) -> Result<Vec<usize>> {
    queries.iter().map(|q| q.knn_k(method)).collect()
}

/// Distributes a shared pass's elapsed wall time evenly across the batch's
/// per-query stats — the amortized per-query CPU cost a batch kernel
/// reports in place of the serial path's per-query timing. No-op on an
/// empty batch.
pub fn share_batch_cpu_time(stats: &mut [QueryStats], elapsed: std::time::Duration) {
    if stats.is_empty() {
        return;
    }
    let share = elapsed / stats.len() as u32;
    for stats in stats.iter_mut() {
        stats.cpu_time += share;
    }
}

/// An index structure built over a dataset ahead of query time.
///
/// Dyn-compatible: only the constructor is restricted to sized `Self`, so a
/// built index can also be handled as `Box<dyn ExactIndex>` where the
/// footprint accessors are needed without the answering interface.
pub trait ExactIndex: AnsweringMethod {
    /// Builds the index over `dataset` with the given options.
    fn build(dataset: &Dataset, options: &BuildOptions) -> Result<Self>
    where
        Self: Sized;

    /// Reports the structural footprint of the built index.
    fn footprint(&self) -> IndexFootprint;

    /// The number of series indexed.
    fn num_series(&self) -> usize;

    /// The series length the index was built for.
    fn series_length(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{Answer, KnnHeap};
    use crate::series::Series;

    #[test]
    fn build_options_builder_pattern() {
        let o = BuildOptions::default()
            .with_leaf_capacity(500)
            .with_segments(8)
            .with_alphabet_size(16)
            .with_buffer_bytes(1 << 20)
            .with_train_samples(42)
            .with_build_threads(4);
        assert_eq!(o.leaf_capacity, 500);
        assert_eq!(o.segments, 8);
        assert_eq!(o.alphabet_size, 16);
        assert_eq!(o.buffer_bytes, 1 << 20);
        assert_eq!(o.train_samples, 42);
        assert_eq!(o.build_threads, 4);
        assert_eq!(BuildOptions::default().build_threads, 1, "serial default");
    }

    #[test]
    fn build_options_validation() {
        let ok = BuildOptions::default().with_segments(16);
        assert!(ok.validate(256).is_ok());
        assert!(
            ok.validate(8).is_err(),
            "segments larger than length must fail"
        );
        assert!(BuildOptions::default()
            .with_leaf_capacity(0)
            .validate(256)
            .is_err());
        assert!(BuildOptions::default()
            .with_segments(0)
            .validate(256)
            .is_err());
        assert!(BuildOptions::default()
            .with_alphabet_size(1)
            .validate(256)
            .is_err());
    }

    #[test]
    fn footprint_statistics() {
        let fp = IndexFootprint {
            total_nodes: 7,
            leaf_nodes: 4,
            memory_bytes: 1024,
            disk_bytes: 4096,
            leaf_fill_factors: vec![1.0, 0.5, 0.25, 0.25],
            leaf_depths: vec![1, 2, 2, 3],
        };
        assert!((fp.mean_fill_factor() - 0.5).abs() < 1e-12);
        assert!((fp.median_fill_factor() - 0.375).abs() < 1e-12);
        assert_eq!(fp.max_leaf_depth(), 3);
        assert!((fp.mean_leaf_depth() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_fill_factor_is_nan_safe() {
        // A NaN fill factor (a degenerate leaf) must sort deterministically
        // (total_cmp puts NaN last) instead of scrambling the median.
        let fp = IndexFootprint {
            leaf_fill_factors: vec![0.75, f64::NAN, 0.25],
            ..Default::default()
        };
        assert_eq!(fp.median_fill_factor(), 0.75);
        let fp = IndexFootprint {
            leaf_fill_factors: vec![f64::NAN, 0.5, 0.25, 1.0],
            ..Default::default()
        };
        // Sorted: 0.25, 0.5, 1.0, NaN → median of the two middle finite values.
        assert_eq!(fp.median_fill_factor(), 0.75);
    }

    #[test]
    fn mode_capabilities_sets() {
        let scans = ModeCapabilities::exact_only();
        assert!(scans.supports(crate::query::AnswerMode::Exact));
        assert!(!scans.supports(crate::query::AnswerMode::NgApproximate));
        assert!(!scans.any_approximate());
        let trees = ModeCapabilities::all();
        assert!(trees.supports(crate::query::AnswerMode::NgApproximate));
        assert!(trees.supports(crate::query::AnswerMode::EpsilonApproximate { epsilon: 0.1 }));
        assert!(trees.supports(crate::query::AnswerMode::DeltaEpsilon {
            delta: 0.9,
            epsilon: 0.1
        }));
        assert!(trees.any_approximate());
    }

    #[test]
    fn footprint_empty_is_zero() {
        let fp = IndexFootprint::default();
        assert_eq!(fp.mean_fill_factor(), 0.0);
        assert_eq!(fp.median_fill_factor(), 0.0);
        assert_eq!(fp.max_leaf_depth(), 0);
        assert_eq!(fp.mean_leaf_depth(), 0.0);
    }

    /// A trivial brute-force method used to exercise the trait default impls.
    struct BruteForce {
        data: Dataset,
    }

    impl AnsweringMethod for BruteForce {
        fn descriptor(&self) -> MethodDescriptor {
            MethodDescriptor {
                name: "BruteForce",
                representation: "raw",
                is_index: false,
                modes: ModeCapabilities::exact_only(),
            }
        }

        fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
            let k = query.knn_k("BruteForce")?;
            let mut heap = KnnHeap::new(k);
            for (i, s) in self.data.iter().enumerate() {
                let d = crate::distance::euclidean(query.values(), s.values());
                stats.record_raw_series_examined(1);
                heap.offer(i, d);
            }
            Ok(heap.into_answer_set())
        }
    }

    #[test]
    fn batch_prelude_helpers_mirror_the_serial_checks() {
        let q32 = Query::nearest_neighbor(Series::new(vec![0.0; 32]));
        let q16 = Query::knn(Series::new(vec![0.0; 16]), 3);
        assert!(batch_expect_length(std::slice::from_ref(&q32), 32).is_ok());
        assert!(matches!(
            batch_expect_length(&[q32.clone(), q16.clone()], 32),
            Err(crate::Error::LengthMismatch {
                expected: 32,
                actual: 16
            })
        ));
        assert!(batch_expect_exact(std::slice::from_ref(&q32), "Scan").is_ok());
        let ng = q32
            .clone()
            .with_mode(crate::query::AnswerMode::NgApproximate);
        assert!(matches!(
            batch_expect_exact(&[q32.clone(), ng], "Scan"),
            Err(crate::Error::UnsupportedMode { method: "Scan", .. })
        ));
        assert_eq!(batch_knn_ks(&[q32.clone(), q16], "M").unwrap(), vec![1, 3]);
        let range = Query::range(Series::new(vec![0.0; 32]), 1.0);
        assert!(matches!(
            batch_knn_ks(&[q32, range], "M"),
            Err(crate::Error::UnsupportedQuery { method: "M", .. })
        ));
        let mut stats = vec![QueryStats::default(); 4];
        share_batch_cpu_time(&mut stats, std::time::Duration::from_millis(8));
        assert!(stats
            .iter()
            .all(|s| s.cpu_time == std::time::Duration::from_millis(2)));
        share_batch_cpu_time(&mut [], std::time::Duration::from_millis(8));
    }

    #[test]
    fn answering_method_default_answer_simple() {
        let data = Dataset::from_flat(vec![0.0, 0.0, 1.0, 1.0, 5.0, 5.0], 2);
        let m = BruteForce { data };
        let q = Query::nearest_neighbor(Series::new(vec![0.9, 0.9]));
        let ans = m.answer_simple(&q).unwrap();
        assert_eq!(
            ans.nearest(),
            Some(Answer::new(1, ans.nearest().unwrap().distance))
        );
        assert_eq!(ans.nearest().unwrap().id, 1);
    }
}

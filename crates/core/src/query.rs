//! Similarity query model.
//!
//! The paper (Section 2) distinguishes k-NN queries from r-range queries, and
//! whole-matching (WM) from subsequence-matching (SM). Its companion study —
//! *Return of the Lernaean Hydra* (PVLDB 2019) — additionally distinguishes
//! **answering modes**: the same index can answer a query exactly, or
//! approximately with progressively weaker (but orders-of-magnitude cheaper)
//! guarantees. Both axes are first class here: a [`Query`] carries the series,
//! the kind (k-NN or range), the matching kind, and the [`AnswerMode`] the
//! caller wants, and the whole stack routes on them.

use crate::hash::Fnv1a;
use crate::knn::Guarantee;
use crate::series::Series;
use crate::{Error, Result};
use std::fmt;

/// Whether a query matches whole series or subsequences.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchingKind {
    /// Whole matching: query and candidates have the same length (Def. 3).
    Whole,
    /// Subsequence matching: candidates are longer than the query (Def. 4).
    ///
    /// The study converts SM to WM by chopping long series into overlapping
    /// subsequences; the indexes in this library operate on WM collections.
    Subsequence,
}

/// The kind of similarity query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryKind {
    /// k-nearest-neighbour query (Def. 1).
    Knn {
        /// The number of neighbours to retrieve.
        k: usize,
    },
    /// r-range query (Def. 2): all series within distance `radius`.
    Range {
        /// The (non-squared) Euclidean distance radius.
        radius: f64,
    },
}

/// The answering mode of a query: what guarantee the caller wants and what
/// work the method may skip to provide it (the mode spectrum of the sequel
/// study, Section 2.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AnswerMode {
    /// The true k nearest neighbours (the primary mode of the source paper).
    Exact,
    /// No-guarantees approximate search: visit (at most) the one index leaf
    /// that covers the query's summarization and return its best candidates.
    NgApproximate,
    /// ε-approximate search: every returned distance is within a factor
    /// `(1 + epsilon)` of the corresponding exact distance. Implemented by
    /// relaxed pruning — a node is pruned when its lower bound reaches
    /// `bsf / (1 + ε)` (Def. 5 of the sequel). `epsilon = 0` degenerates to
    /// exact search.
    EpsilonApproximate {
        /// The allowed relative error (≥ 0, finite).
        epsilon: f64,
    },
    /// δ-ε-approximate search: with probability at least `delta` the answer is
    /// an ε-approximation; with probability `1 - delta` the search may stop
    /// even earlier. Implemented as ε-relaxed pruning additionally scaled by
    /// δ (a node is pruned when its lower bound reaches `δ·bsf / (1 + ε)`) —
    /// a deterministic stand-in for the sequel's histogram-based early stop.
    /// `delta = 1` degenerates to plain ε-approximate search.
    DeltaEpsilon {
        /// The confidence level (in `(0, 1]`).
        delta: f64,
        /// The allowed relative error (≥ 0, finite).
        epsilon: f64,
    },
}

impl AnswerMode {
    /// Whether this mode demands the exact answer.
    #[inline]
    pub fn is_exact(&self) -> bool {
        matches!(self, AnswerMode::Exact)
    }

    /// Validates the mode's parameters.
    pub fn validate(&self) -> Result<()> {
        match *self {
            AnswerMode::Exact | AnswerMode::NgApproximate => Ok(()),
            AnswerMode::EpsilonApproximate { epsilon } => validate_epsilon(epsilon),
            AnswerMode::DeltaEpsilon { delta, epsilon } => {
                validate_epsilon(epsilon)?;
                if !(delta.is_finite() && delta > 0.0 && delta <= 1.0) {
                    return Err(Error::invalid_parameter(
                        "delta",
                        format!("must be in (0, 1], got {delta}"),
                    ));
                }
                Ok(())
            }
        }
    }

    /// The factor a method multiplies its best-so-far with before comparing
    /// against a node's lower bound: a node is prunable when
    /// `lower_bound >= bsf * prune_shrink()`.
    ///
    /// `1.0` for exact search (and for the ng descent, which prunes nothing),
    /// `1 / (1 + ε)` for ε-approximate search, `δ / (1 + ε)` for δ-ε search.
    /// With `ε = 0` (and `δ = 1`) the factor is exactly `1.0`, so the relaxed
    /// search is bit-identical to the exact one.
    #[inline]
    pub fn prune_shrink(&self) -> f64 {
        match *self {
            AnswerMode::Exact | AnswerMode::NgApproximate => 1.0,
            AnswerMode::EpsilonApproximate { epsilon } => 1.0 / (1.0 + epsilon),
            AnswerMode::DeltaEpsilon { delta, epsilon } => delta / (1.0 + epsilon),
        }
    }

    /// The guarantee a conforming method provides when answering in this mode.
    pub fn guarantee(&self) -> Guarantee {
        match *self {
            AnswerMode::Exact => Guarantee::Exact,
            AnswerMode::NgApproximate => Guarantee::None,
            AnswerMode::EpsilonApproximate { epsilon } => Guarantee::EpsilonBound { epsilon },
            AnswerMode::DeltaEpsilon { delta, epsilon } => {
                Guarantee::ProbabilisticEpsilonBound { delta, epsilon }
            }
        }
    }

    /// Parses the CLI syntax `exact | ng | eps:<v> | deltaeps:<d>,<e>`.
    pub fn parse(text: &str) -> Result<AnswerMode> {
        let bad = |msg: String| Error::invalid_parameter("mode", msg);
        let mode = match text.trim() {
            "exact" => AnswerMode::Exact,
            "ng" => AnswerMode::NgApproximate,
            other => {
                if let Some(raw) = other.strip_prefix("eps:") {
                    let epsilon = raw
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| bad(format!("invalid epsilon {raw:?}")))?;
                    AnswerMode::EpsilonApproximate { epsilon }
                } else if let Some(raw) = other.strip_prefix("deltaeps:") {
                    let (d, e) = raw
                        .split_once(',')
                        .ok_or_else(|| bad(format!("expected deltaeps:<d>,<e>, got {other:?}")))?;
                    let delta = d
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| bad(format!("invalid delta {d:?}")))?;
                    let epsilon = e
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| bad(format!("invalid epsilon {e:?}")))?;
                    AnswerMode::DeltaEpsilon { delta, epsilon }
                } else {
                    return Err(bad(format!(
                        "unknown mode {other:?} (expected exact | ng | eps:<v> | deltaeps:<d>,<e>)"
                    )));
                }
            }
        };
        mode.validate()?;
        Ok(mode)
    }
}

/// A deadline expressed in deterministic simulated-I/O cost units: the number
/// of raw series a method may examine before it must stop and return its
/// best-so-far answer (tagged [`Guarantee::Truncated`]).
///
/// Budgets are counted in cost-model units rather than wall clock so that
/// budgeted runs stay bit-identical across machines and thread counts. A
/// method never returns an *empty* truncated answer: the first candidate is
/// always examined, even under a zero budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    raw_reads: u64,
}

impl Budget {
    /// A budget of `n` raw series reads.
    pub fn raw_reads(n: u64) -> Self {
        Self { raw_reads: n }
    }

    /// The maximum number of raw series the method may examine.
    #[inline]
    pub fn limit(&self) -> u64 {
        self.raw_reads
    }

    /// Parses the CLI syntax `inf | <count>` (e.g. `--budget 500`).
    pub fn parse(text: &str) -> Result<Option<Budget>> {
        let text = text.trim();
        if text.eq_ignore_ascii_case("inf") {
            return Ok(None);
        }
        text.parse::<u64>()
            .map(|n| Some(Budget::raw_reads(n)))
            .map_err(|_| {
                Error::invalid_parameter(
                    "budget",
                    format!("expected `inf` or a raw-read count, got {text:?}"),
                )
            })
    }
}

/// Tracks a query's [`Budget`] while a method runs: methods call
/// [`BudgetMeter::should_stop`] before examining each raw candidate and
/// [`BudgetMeter::guarantee`] when tagging their answer.
///
/// The meter is *sticky*: once the budget trips, `should_stop` keeps
/// returning `true`, so multi-phase methods (filter + refine) stay stopped.
/// A meter built from `None` never trips, keeping the unbudgeted path
/// bit-identical.
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    limit: u64,
    dataset_size: usize,
    truncated: bool,
}

impl BudgetMeter {
    /// Creates a meter for a query over a dataset of `dataset_size` series.
    pub fn new(budget: Option<Budget>, dataset_size: usize) -> Self {
        Self {
            limit: budget.map_or(u64::MAX, |b| b.limit()),
            dataset_size,
            truncated: false,
        }
    }

    /// Whether the search must stop before examining the next candidate.
    ///
    /// `spent` is the number of raw series examined so far; `have_answer`
    /// guards the non-empty-answer contract — the meter never stops a search
    /// that has produced no candidate yet, so even a zero budget examines
    /// one series.
    #[inline]
    pub fn should_stop(&mut self, spent: u64, have_answer: bool) -> bool {
        if !self.truncated && have_answer && spent >= self.limit {
            self.truncated = true;
        }
        self.truncated
    }

    /// Whether the budget has tripped.
    #[inline]
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The raw-read limit, or `None` when the meter is unlimited. Lets bulk
    /// readers cap a batched read at the remaining budget.
    #[inline]
    pub fn limit(&self) -> Option<u64> {
        (self.limit != u64::MAX).then_some(self.limit)
    }

    /// The guarantee to tag the answer with: `base` when the search completed,
    /// [`Guarantee::Truncated`] when the budget tripped (`examined` = raw
    /// series examined, reported as a fraction of the dataset).
    pub fn guarantee(&self, base: Guarantee, examined: u64) -> Guarantee {
        if self.truncated {
            Guarantee::Truncated {
                examined_fraction: examined as f64 / self.dataset_size.max(1) as f64,
            }
        } else {
            base
        }
    }
}

fn validate_epsilon(epsilon: f64) -> Result<()> {
    if !(epsilon.is_finite() && epsilon >= 0.0) {
        return Err(Error::invalid_parameter(
            "epsilon",
            format!("must be a non-negative finite value, got {epsilon}"),
        ));
    }
    Ok(())
}

impl fmt::Display for AnswerMode {
    /// Formats the mode in the CLI syntax accepted by [`AnswerMode::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AnswerMode::Exact => write!(f, "exact"),
            AnswerMode::NgApproximate => write!(f, "ng"),
            AnswerMode::EpsilonApproximate { epsilon } => write!(f, "eps:{epsilon}"),
            AnswerMode::DeltaEpsilon { delta, epsilon } => write!(f, "deltaeps:{delta},{epsilon}"),
        }
    }
}

/// A similarity search query: the query series plus what to retrieve and
/// under what answering mode.
#[derive(Clone, Debug)]
pub struct Query {
    series: Series,
    kind: QueryKind,
    matching: MatchingKind,
    mode: AnswerMode,
    budget: Option<Budget>,
}

impl Query {
    /// Creates a whole-matching exact k-NN query, or a typed
    /// [`Error::InvalidParameter`] when `k == 0`.
    pub fn try_knn(series: Series, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::invalid_parameter("k", "must be at least 1"));
        }
        Ok(Self {
            series,
            kind: QueryKind::Knn { k },
            matching: MatchingKind::Whole,
            mode: AnswerMode::Exact,
            budget: None,
        })
    }

    /// Creates a whole-matching exact k-NN query.
    ///
    /// # Panics
    /// Panics if `k == 0`; use [`Query::try_knn`] for a fallible variant.
    pub fn knn(series: Series, k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        // hydra-lint: allow(lib-unwrap) k > 0 asserted above; panic is documented
        Self::try_knn(series, k).expect("validated above")
    }

    /// Creates a whole-matching exact 1-NN query (the paper's primary
    /// workload).
    pub fn nearest_neighbor(series: Series) -> Self {
        Self::knn(series, 1)
    }

    /// Creates a whole-matching r-range query, or a typed
    /// [`Error::InvalidParameter`] when `radius` is negative or not finite.
    pub fn try_range(series: Series, radius: f64) -> Result<Self> {
        if !(radius.is_finite() && radius >= 0.0) {
            return Err(Error::invalid_parameter(
                "radius",
                format!("must be a non-negative finite value, got {radius}"),
            ));
        }
        Ok(Self {
            series,
            kind: QueryKind::Range { radius },
            matching: MatchingKind::Whole,
            mode: AnswerMode::Exact,
            budget: None,
        })
    }

    /// Creates a whole-matching r-range query.
    ///
    /// # Panics
    /// Panics if `radius` is negative or not finite; use [`Query::try_range`]
    /// for a fallible variant.
    pub fn range(series: Series, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be a non-negative finite value"
        );
        // hydra-lint: allow(lib-unwrap) radius validated above; panic is documented
        Self::try_range(series, radius).expect("validated above")
    }

    /// The query series.
    #[inline]
    pub fn series(&self) -> &Series {
        &self.series
    }

    /// The query values as a slice.
    #[inline]
    pub fn values(&self) -> &[f32] {
        self.series.values()
    }

    /// The length of the query series.
    #[inline]
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Returns `true` for a zero-length query.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The query kind (k-NN or range).
    #[inline]
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// The matching kind (whole or subsequence).
    #[inline]
    pub fn matching(&self) -> MatchingKind {
        self.matching
    }

    /// The answering mode ([`AnswerMode::Exact`] unless overridden with
    /// [`Query::with_mode`]).
    #[inline]
    pub fn mode(&self) -> AnswerMode {
        self.mode
    }

    /// For a k-NN query, the number of neighbours; `None` for range queries.
    #[inline]
    pub fn k(&self) -> Option<usize> {
        match self.kind {
            QueryKind::Knn { k } => Some(k),
            QueryKind::Range { .. } => None,
        }
    }

    /// The `k` of a k-NN query, or a typed [`Error::UnsupportedQuery`] naming
    /// `method` for range queries.
    ///
    /// Every method in the suite answers k-NN queries only; this is the one
    /// boundary through which they reject range queries (instead of silently
    /// answering a 1-NN query, as the pre-mode API did).
    #[inline]
    pub fn knn_k(&self, method: &'static str) -> Result<usize> {
        self.k().ok_or_else(|| {
            Error::unsupported_query(method, "range queries are not supported; use a k-NN query")
        })
    }

    /// For a range query, the radius; `None` for k-NN queries.
    #[inline]
    pub fn radius(&self) -> Option<f64> {
        match self.kind {
            QueryKind::Knn { .. } => None,
            QueryKind::Range { radius } => Some(radius),
        }
    }

    /// Marks the query as a subsequence-matching query.
    ///
    /// The indexes in this suite answer whole-matching queries; callers that
    /// perform SM-to-WM conversion can tag queries accordingly for reporting.
    pub fn with_matching(mut self, matching: MatchingKind) -> Self {
        self.matching = matching;
        self
    }

    /// Sets the answering mode.
    ///
    /// # Panics
    /// Panics when the mode's parameters are invalid (negative or non-finite
    /// `epsilon`, `delta` outside `(0, 1]`); use [`Query::try_with_mode`] for
    /// a fallible variant (CLI-originated construction goes through
    /// [`AnswerMode::parse`], which validates already).
    pub fn with_mode(mut self, mode: AnswerMode) -> Self {
        // hydra-lint: allow(lib-unwrap) documented panic; try_with_mode is the fallible twin
        mode.validate().expect("invalid answer mode");
        self.mode = mode;
        self
    }

    /// Sets the answering mode, or returns a typed
    /// [`Error::InvalidParameter`] when the mode's parameters are invalid.
    pub fn try_with_mode(mut self, mode: AnswerMode) -> Result<Self> {
        mode.validate()?;
        self.mode = mode;
        Ok(self)
    }

    /// The query's I/O budget, if any.
    #[inline]
    pub fn budget(&self) -> Option<Budget> {
        self.budget
    }

    /// Attaches an I/O [`Budget`] (pass `None` to clear it). Budgeted queries
    /// are answered anytime-style: when the budget runs out mid-search the
    /// method returns its best-so-far answer tagged
    /// [`Guarantee::Truncated`].
    pub fn with_budget(mut self, budget: Option<Budget>) -> Self {
        self.budget = budget;
        self
    }

    /// Consumes the query and returns its series.
    pub fn into_series(self) -> Series {
        self.series
    }

    /// A stable FNV-1a hash over the query's canonical byte encoding: the
    /// series values (by `f32` bit pattern), the query kind with its
    /// parameter (`k` / radius), the matching kind, the [`AnswerMode`] with
    /// its parameters, and the [`Budget`].
    ///
    /// Two queries that could legally produce different answers hash
    /// differently: same values with a different `k`, a different mode (or
    /// the same mode with different ε/δ), a different budget, or a
    /// permutation of the same values. The hash is identical across
    /// processes, platforms and runs, so it can key persistent or shared
    /// caches (the serving layer keys its answer cache on it, combined with
    /// the dataset fingerprint).
    pub fn canonical_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        // Series: length prefix then every value's bit pattern, so
        // ([1.0], len 1) and ([1.0, 0.0], len 2) cannot collide by padding.
        h.write_u64(self.series.len() as u64);
        for &v in self.series.values() {
            h.write_f32(v);
        }
        match self.kind {
            QueryKind::Knn { k } => {
                h.write_u8(0);
                h.write_u64(k as u64);
            }
            QueryKind::Range { radius } => {
                h.write_u8(1);
                h.write_f64(radius);
            }
        }
        h.write_u8(match self.matching {
            MatchingKind::Whole => 0,
            MatchingKind::Subsequence => 1,
        });
        match self.mode {
            AnswerMode::Exact => h.write_u8(0),
            AnswerMode::NgApproximate => h.write_u8(1),
            AnswerMode::EpsilonApproximate { epsilon } => {
                h.write_u8(2);
                h.write_f64(epsilon);
            }
            AnswerMode::DeltaEpsilon { delta, epsilon } => {
                h.write_u8(3);
                h.write_f64(delta);
                h.write_f64(epsilon);
            }
        }
        match self.budget {
            None => h.write_u8(0),
            Some(b) => {
                h.write_u8(1);
                h.write_u64(b.limit());
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series::new(vec![0.0, 1.0, 2.0, 3.0])
    }

    #[test]
    fn knn_query_accessors() {
        let q = Query::knn(series(), 5);
        assert_eq!(q.k(), Some(5));
        assert_eq!(q.radius(), None);
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
        assert_eq!(q.matching(), MatchingKind::Whole);
        assert_eq!(q.kind(), QueryKind::Knn { k: 5 });
        assert_eq!(q.mode(), AnswerMode::Exact);
        assert_eq!(q.knn_k("test").unwrap(), 5);
    }

    #[test]
    fn nearest_neighbor_is_k1() {
        let q = Query::nearest_neighbor(series());
        assert_eq!(q.k(), Some(1));
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn knn_rejects_zero_k() {
        let _ = Query::knn(series(), 0);
    }

    #[test]
    fn try_knn_returns_a_typed_error_instead_of_panicking() {
        assert!(matches!(
            Query::try_knn(series(), 0),
            Err(Error::InvalidParameter { name: "k", .. })
        ));
        assert_eq!(Query::try_knn(series(), 3).unwrap().k(), Some(3));
    }

    #[test]
    fn range_query_accessors() {
        let q = Query::range(series(), 2.5);
        assert_eq!(q.radius(), Some(2.5));
        assert_eq!(q.k(), None);
    }

    #[test]
    fn range_queries_yield_a_typed_error_from_knn_k() {
        let q = Query::range(series(), 1.0);
        match q.knn_k("DSTree") {
            Err(Error::UnsupportedQuery { method, .. }) => assert_eq!(method, "DSTree"),
            other => panic!("expected UnsupportedQuery, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn range_rejects_negative_radius() {
        let _ = Query::range(series(), -1.0);
    }

    #[test]
    fn try_range_returns_a_typed_error_instead_of_panicking() {
        assert!(matches!(
            Query::try_range(series(), -1.0),
            Err(Error::InvalidParameter { name: "radius", .. })
        ));
        assert!(Query::try_range(series(), f64::NAN).is_err());
        assert_eq!(Query::try_range(series(), 1.0).unwrap().radius(), Some(1.0));
    }

    #[test]
    fn matching_kind_can_be_overridden() {
        let q = Query::nearest_neighbor(series()).with_matching(MatchingKind::Subsequence);
        assert_eq!(q.matching(), MatchingKind::Subsequence);
    }

    #[test]
    fn into_series_round_trips() {
        let q = Query::nearest_neighbor(series());
        assert_eq!(q.into_series(), series());
    }

    #[test]
    fn with_mode_builder_carries_the_mode() {
        let q = Query::knn(series(), 2).with_mode(AnswerMode::NgApproximate);
        assert_eq!(q.mode(), AnswerMode::NgApproximate);
        let q = q.with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.5 });
        assert_eq!(q.mode(), AnswerMode::EpsilonApproximate { epsilon: 0.5 });
    }

    #[test]
    #[should_panic(expected = "invalid answer mode")]
    fn with_mode_rejects_negative_epsilon() {
        let _ = Query::nearest_neighbor(series())
            .with_mode(AnswerMode::EpsilonApproximate { epsilon: -0.1 });
    }

    #[test]
    fn try_with_mode_returns_typed_errors() {
        let bad = Query::nearest_neighbor(series()).try_with_mode(AnswerMode::DeltaEpsilon {
            delta: 0.0,
            epsilon: 0.1,
        });
        assert!(matches!(
            bad,
            Err(Error::InvalidParameter { name: "delta", .. })
        ));
        let good = Query::nearest_neighbor(series())
            .try_with_mode(AnswerMode::DeltaEpsilon {
                delta: 0.9,
                epsilon: 0.1,
            })
            .unwrap();
        assert!(!good.mode().is_exact());
    }

    #[test]
    fn mode_validation_rules() {
        assert!(AnswerMode::Exact.validate().is_ok());
        assert!(AnswerMode::NgApproximate.validate().is_ok());
        assert!(AnswerMode::EpsilonApproximate { epsilon: 0.0 }
            .validate()
            .is_ok());
        assert!(AnswerMode::EpsilonApproximate {
            epsilon: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(AnswerMode::DeltaEpsilon {
            delta: 1.0,
            epsilon: 0.0
        }
        .validate()
        .is_ok());
        assert!(AnswerMode::DeltaEpsilon {
            delta: 1.1,
            epsilon: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn prune_shrink_degenerates_to_exact_at_zero_epsilon() {
        assert_eq!(AnswerMode::Exact.prune_shrink(), 1.0);
        assert_eq!(
            AnswerMode::EpsilonApproximate { epsilon: 0.0 }.prune_shrink(),
            1.0
        );
        assert_eq!(
            AnswerMode::DeltaEpsilon {
                delta: 1.0,
                epsilon: 0.0
            }
            .prune_shrink(),
            1.0
        );
        assert!(
            (AnswerMode::EpsilonApproximate { epsilon: 1.0 }.prune_shrink() - 0.5).abs() < 1e-12
        );
        assert!(
            (AnswerMode::DeltaEpsilon {
                delta: 0.5,
                epsilon: 1.0
            }
            .prune_shrink()
                - 0.25)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn mode_guarantee_mapping() {
        assert_eq!(AnswerMode::Exact.guarantee(), Guarantee::Exact);
        assert_eq!(AnswerMode::NgApproximate.guarantee(), Guarantee::None);
        assert_eq!(
            AnswerMode::EpsilonApproximate { epsilon: 0.5 }.guarantee(),
            Guarantee::EpsilonBound { epsilon: 0.5 }
        );
        assert_eq!(
            AnswerMode::DeltaEpsilon {
                delta: 0.9,
                epsilon: 0.5
            }
            .guarantee(),
            Guarantee::ProbabilisticEpsilonBound {
                delta: 0.9,
                epsilon: 0.5
            }
        );
    }

    #[test]
    fn budget_builder_and_parse() {
        let q = Query::nearest_neighbor(series());
        assert_eq!(q.budget(), None);
        let q = q.with_budget(Some(Budget::raw_reads(100)));
        assert_eq!(q.budget(), Some(Budget::raw_reads(100)));
        assert_eq!(q.with_budget(None).budget(), None);

        assert_eq!(Budget::parse("inf").unwrap(), None);
        assert_eq!(Budget::parse(" INF ").unwrap(), None);
        assert_eq!(Budget::parse("500").unwrap(), Some(Budget::raw_reads(500)));
        assert!(Budget::parse("lots").is_err());
        assert!(Budget::parse("-1").is_err());
    }

    #[test]
    fn budget_meter_is_sticky_and_never_returns_empty() {
        let mut meter = BudgetMeter::new(Some(Budget::raw_reads(0)), 10);
        // No answer yet: even a zero budget lets the first candidate through.
        assert!(!meter.should_stop(0, false));
        assert!(meter.should_stop(1, true));
        assert!(meter.is_truncated());
        // Sticky: stays stopped regardless of later arguments.
        assert!(meter.should_stop(0, false));
        match meter.guarantee(Guarantee::Exact, 1) {
            Guarantee::Truncated { examined_fraction } => {
                assert!((examined_fraction - 0.1).abs() < 1e-12);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn unlimited_meter_never_trips() {
        let mut meter = BudgetMeter::new(None, 10);
        for spent in 0..1000 {
            assert!(!meter.should_stop(spent, true));
        }
        assert!(!meter.is_truncated());
        assert_eq!(meter.guarantee(Guarantee::Exact, 1000), Guarantee::Exact);
    }

    #[test]
    fn mode_parse_round_trips_the_cli_syntax() {
        for (text, mode) in [
            ("exact", AnswerMode::Exact),
            ("ng", AnswerMode::NgApproximate),
            ("eps:0.25", AnswerMode::EpsilonApproximate { epsilon: 0.25 }),
            (
                "deltaeps:0.95,0.1",
                AnswerMode::DeltaEpsilon {
                    delta: 0.95,
                    epsilon: 0.1,
                },
            ),
        ] {
            assert_eq!(AnswerMode::parse(text).unwrap(), mode, "{text}");
            assert_eq!(AnswerMode::parse(&mode.to_string()).unwrap(), mode);
        }
        assert!(AnswerMode::parse("approximate").is_err());
        assert!(AnswerMode::parse("eps:lots").is_err());
        assert!(AnswerMode::parse("eps:-1").is_err());
        assert!(AnswerMode::parse("deltaeps:0.5").is_err());
        assert!(AnswerMode::parse("deltaeps:2,0.1").is_err());
    }

    #[test]
    fn canonical_hash_is_stable_and_deterministic() {
        let a = Query::knn(series(), 5).canonical_hash();
        let b = Query::knn(series(), 5).canonical_hash();
        assert_eq!(a, b, "same query hashes identically across instances");
    }

    #[test]
    fn canonical_hash_distinguishes_k() {
        let k5 = Query::knn(series(), 5).canonical_hash();
        let k6 = Query::knn(series(), 6).canonical_hash();
        assert_ne!(k5, k6, "same values, different k");
    }

    #[test]
    fn canonical_hash_distinguishes_mode() {
        let base = Query::knn(series(), 5);
        let exact = base.clone().canonical_hash();
        let ng = base
            .clone()
            .with_mode(AnswerMode::NgApproximate)
            .canonical_hash();
        let eps1 = base
            .clone()
            .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.1 })
            .canonical_hash();
        let eps2 = base
            .clone()
            .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.2 })
            .canonical_hash();
        let de = base
            .with_mode(AnswerMode::DeltaEpsilon {
                delta: 0.05,
                epsilon: 0.1,
            })
            .canonical_hash();
        let all = [exact, ng, eps1, eps2, de];
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "modes {i} and {j} collide");
            }
        }
    }

    #[test]
    fn canonical_hash_distinguishes_series() {
        let a = Query::knn(Series::new(vec![0.0, 1.0, 2.0, 3.0]), 5).canonical_hash();
        // Same multiset of values, different order.
        let b = Query::knn(Series::new(vec![3.0, 2.0, 1.0, 0.0]), 5).canonical_hash();
        // Different length.
        let c = Query::knn(Series::new(vec![0.0, 1.0, 2.0]), 5).canonical_hash();
        assert_ne!(a, b, "value order is significant");
        assert_ne!(a, c, "series length is significant");
    }

    #[test]
    fn canonical_hash_distinguishes_kind_and_budget() {
        let knn = Query::knn(series(), 5).canonical_hash();
        let range = Query::range(series(), 5.0).canonical_hash();
        assert_ne!(knn, range, "k-NN vs range with numerically equal parameter");

        let unbounded = Query::knn(series(), 5).canonical_hash();
        let bounded = Query::knn(series(), 5)
            .with_budget(Some(Budget::raw_reads(100)))
            .canonical_hash();
        assert_ne!(unbounded, bounded, "budget is significant");
    }
}

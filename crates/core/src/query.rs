//! Similarity query model.
//!
//! The paper (Section 2) distinguishes k-NN queries from r-range queries, and
//! whole-matching (WM) from subsequence-matching (SM). The experimental study
//! — and therefore this library's primary code path — focuses on **exact
//! whole-matching 1-NN queries** under Euclidean distance, but the query model
//! here covers the full definitions so that range queries and k > 1 are first
//! class citizens.

use crate::series::Series;

/// Whether a query matches whole series or subsequences.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchingKind {
    /// Whole matching: query and candidates have the same length (Def. 3).
    Whole,
    /// Subsequence matching: candidates are longer than the query (Def. 4).
    ///
    /// The study converts SM to WM by chopping long series into overlapping
    /// subsequences; the indexes in this library operate on WM collections.
    Subsequence,
}

/// The kind of similarity query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryKind {
    /// k-nearest-neighbour query (Def. 1).
    Knn {
        /// The number of neighbours to retrieve.
        k: usize,
    },
    /// r-range query (Def. 2): all series within distance `radius`.
    Range {
        /// The (non-squared) Euclidean distance radius.
        radius: f64,
    },
}

/// A similarity search query: the query series plus what to retrieve.
#[derive(Clone, Debug)]
pub struct Query {
    series: Series,
    kind: QueryKind,
    matching: MatchingKind,
}

impl Query {
    /// Creates a whole-matching k-NN query.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn(series: Series, k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        Self {
            series,
            kind: QueryKind::Knn { k },
            matching: MatchingKind::Whole,
        }
    }

    /// Creates a whole-matching 1-NN query (the paper's primary workload).
    pub fn nearest_neighbor(series: Series) -> Self {
        Self::knn(series, 1)
    }

    /// Creates a whole-matching r-range query.
    ///
    /// # Panics
    /// Panics if `radius` is negative or not finite.
    pub fn range(series: Series, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be a non-negative finite value"
        );
        Self {
            series,
            kind: QueryKind::Range { radius },
            matching: MatchingKind::Whole,
        }
    }

    /// The query series.
    #[inline]
    pub fn series(&self) -> &Series {
        &self.series
    }

    /// The query values as a slice.
    #[inline]
    pub fn values(&self) -> &[f32] {
        self.series.values()
    }

    /// The length of the query series.
    #[inline]
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Returns `true` for a zero-length query.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The query kind (k-NN or range).
    #[inline]
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// The matching kind (whole or subsequence).
    #[inline]
    pub fn matching(&self) -> MatchingKind {
        self.matching
    }

    /// For a k-NN query, the number of neighbours; `None` for range queries.
    #[inline]
    pub fn k(&self) -> Option<usize> {
        match self.kind {
            QueryKind::Knn { k } => Some(k),
            QueryKind::Range { .. } => None,
        }
    }

    /// For a range query, the radius; `None` for k-NN queries.
    #[inline]
    pub fn radius(&self) -> Option<f64> {
        match self.kind {
            QueryKind::Knn { .. } => None,
            QueryKind::Range { radius } => Some(radius),
        }
    }

    /// Marks the query as a subsequence-matching query.
    ///
    /// The indexes in this suite answer whole-matching queries; callers that
    /// perform SM-to-WM conversion can tag queries accordingly for reporting.
    pub fn with_matching(mut self, matching: MatchingKind) -> Self {
        self.matching = matching;
        self
    }

    /// Consumes the query and returns its series.
    pub fn into_series(self) -> Series {
        self.series
    }
}

/// A standalone r-range query description (convenience type for APIs that
/// accept only range queries).
#[derive(Clone, Debug)]
pub struct RangeQuery {
    /// The query series.
    pub series: Series,
    /// The Euclidean distance radius.
    pub radius: f64,
}

impl RangeQuery {
    /// Creates a new range query.
    pub fn new(series: Series, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be a non-negative finite value"
        );
        Self { series, radius }
    }
}

impl From<RangeQuery> for Query {
    fn from(rq: RangeQuery) -> Self {
        Query::range(rq.series, rq.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series::new(vec![0.0, 1.0, 2.0, 3.0])
    }

    #[test]
    fn knn_query_accessors() {
        let q = Query::knn(series(), 5);
        assert_eq!(q.k(), Some(5));
        assert_eq!(q.radius(), None);
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
        assert_eq!(q.matching(), MatchingKind::Whole);
        assert_eq!(q.kind(), QueryKind::Knn { k: 5 });
    }

    #[test]
    fn nearest_neighbor_is_k1() {
        let q = Query::nearest_neighbor(series());
        assert_eq!(q.k(), Some(1));
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn knn_rejects_zero_k() {
        let _ = Query::knn(series(), 0);
    }

    #[test]
    fn range_query_accessors() {
        let q = Query::range(series(), 2.5);
        assert_eq!(q.radius(), Some(2.5));
        assert_eq!(q.k(), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn range_rejects_negative_radius() {
        let _ = Query::range(series(), -1.0);
    }

    #[test]
    fn range_query_struct_converts_to_query() {
        let rq = RangeQuery::new(series(), 1.0);
        let q: Query = rq.into();
        assert_eq!(q.radius(), Some(1.0));
    }

    #[test]
    fn matching_kind_can_be_overridden() {
        let q = Query::nearest_neighbor(series()).with_matching(MatchingKind::Subsequence);
        assert_eq!(q.matching(), MatchingKind::Subsequence);
    }

    #[test]
    fn into_series_round_trips() {
        let q = Query::nearest_neighbor(series());
        assert_eq!(q.into_series(), series());
    }
}

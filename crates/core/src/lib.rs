//! # hydra-core
//!
//! Core types and traits for the `hydra` data series similarity search benchmark
//! suite, a Rust reproduction of *"The Lernaean Hydra of Data Series Similarity
//! Search: An Experimental Evaluation of the State of the Art"* (PVLDB 2018).
//!
//! This crate defines:
//!
//! * the data series model ([`Series`], [`Dataset`]) and Z-normalization,
//! * Euclidean distance kernels, including the UCR-Suite optimizations
//!   (no square root, early abandoning, reordered early abandoning) in
//!   [`distance`], backed by the runtime-dispatched explicit SSE2/AVX2
//!   implementations in [`simd`] (portable 4-lane fallback, bit-identical
//!   across kernels, `HYDRA_SIMD=portable|native` override),
//! * the similarity query model (k-NN and r-range queries, whole matching,
//!   and the exact / ng-approximate / ε- / δ-ε-approximate answering modes of
//!   the sequel study) in [`query`],
//! * the common interface implemented by every method evaluated in the paper
//!   ([`AnsweringMethod`], [`ExactIndex`]) in [`method`],
//! * the unified dyn-dispatch query driver ([`QueryEngine`]) that answers and
//!   measures queries identically across all ten methods in [`engine`],
//!   including the multi-threaded workload driver
//!   ([`QueryEngine::answer_workload`]) and the batched driver
//!   ([`QueryEngine::answer_batch`], backed by the opt-in
//!   [`method::BatchAnswering`] capability that amortizes one data pass
//!   across a whole batch of queries) built on the primitives in
//!   [`parallel`],
//! * the persistence interface ([`PersistentIndex`]) through which index
//!   methods snapshot their built structure to disk and reload it
//!   bit-identically in a later session (see `hydra_storage::snapshot` for
//!   the on-disk container format) in [`persist`],
//! * the measurement framework of the paper's Section 4.2: pruning ratio,
//!   tightness of the lower bound (TLB), index footprint, and timing breakdowns
//!   in [`stats`].
//!
//! All ten similarity search methods of the paper (UCR-Suite, MASS, Stepwise,
//! R*-tree, M-tree, VA+file, SFA trie, DSTree, iSAX2+, ADS+) are implemented in
//! sibling crates on top of these abstractions.

// Every unsafe operation inside an `unsafe fn` must sit in its own
// `unsafe {}` block with a `// SAFETY:` comment (enforced by hydra-lint's
// `undocumented-unsafe` rule).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod distance;
pub mod engine;
pub mod error;
pub mod hash;
pub mod knn;
pub mod method;
pub mod parallel;
pub mod persist;
pub mod query;
pub mod series;
pub mod simd;
pub mod stats;

pub use distance::{
    euclidean, euclidean_early_abandon, euclidean_reordered, squared_euclidean,
    squared_euclidean_early_abandon, QueryOrder,
};
pub use engine::{
    Completion, EngineAnswer, EngineHandle, FallbackPolicy, IoSource, QueryEngine, RetryPolicy,
};
pub use error::{Error, Result};
pub use hash::Fnv1a;
pub use knn::{replay_outcome, Answer, AnswerSet, BaseGuarantee, Guarantee, KnnHeap, Outcome};
pub use method::{
    AnsweringMethod, BatchAnswering, BuildOptions, ExactIndex, IndexFootprint, IntraAnswering,
    MethodDescriptor, ModeCapabilities,
};
pub use parallel::{Parallelism, SharedBsf};
pub use persist::{PersistentIndex, SnapshotSink, SnapshotSource};
pub use query::{AnswerMode, Budget, BudgetMeter, MatchingKind, Query, QueryKind};
pub use series::{Dataset, Series, SeriesView};
pub use simd::Kernel;
pub use stats::{IoSnapshot, PruningStats, QueryStats, RunClock, TimeBreakdown, Tlb};

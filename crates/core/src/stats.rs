//! Measurement framework (Section 4.2 of the paper).
//!
//! The study compares methods along four axes:
//!
//! 1. **scalability / search efficiency** — wall-clock time split into CPU and
//!    I/O components, plus the number of random disk accesses;
//! 2. **footprint** — node counts, memory / disk size, leaf fill factor and
//!    depth (see [`crate::IndexFootprint`]);
//! 3. **pruning ratio** `P = 1 - (#raw series examined / #series in dataset)`;
//! 4. **tightness of the lower bound** `TLB = lb(Q', N) / avg true distance(Q, N)`
//!    averaged over all leaf nodes and queries.
//!
//! [`QueryStats`] accumulates per-query counters; [`PruningStats`] and [`Tlb`]
//! aggregate them across a workload; [`RunClock`] / [`TimeBreakdown`] track the
//! CPU vs I/O time split.

use std::time::{Duration, Instant};

/// A point-in-time copy of I/O counters: page accesses split by access
/// pattern, plus byte totals.
///
/// Counters are produced by the instrumented store in `hydra-storage` (which
/// re-exports this type) and consumed by the [`crate::engine::QueryEngine`]
/// and the cost models.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Page reads that continued directly after the previously read page.
    pub sequential_pages: u64,
    /// Page reads that required a seek (any non-contiguous access).
    pub random_pages: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written (index construction payloads).
    pub bytes_written: u64,
}

impl IoSnapshot {
    /// Total page accesses of either kind.
    pub fn total_pages(&self) -> u64 {
        self.sequential_pages + self.random_pages
    }

    /// The difference `self - earlier`, for measuring a code region.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            sequential_pages: self.sequential_pages - earlier.sequential_pages,
            random_pages: self.random_pages - earlier.random_pages,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
        }
    }
}

/// Per-query work counters, filled in by every method while answering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryStats {
    /// Number of raw series whose full-resolution values were examined
    /// (the denominator of the pruning ratio is the dataset size).
    pub raw_series_examined: u64,
    /// Number of summarized candidates whose lower bound was evaluated.
    pub lower_bounds_computed: u64,
    /// Number of index leaves visited.
    pub leaves_visited: u64,
    /// Number of index internal nodes visited.
    pub internal_nodes_visited: u64,
    /// Number of full Euclidean distance computations that were abandoned early.
    pub early_abandons: u64,
    /// Sequential disk page accesses charged to this query.
    pub sequential_page_accesses: u64,
    /// Random disk page accesses (seeks) charged to this query.
    pub random_page_accesses: u64,
    /// Bytes read from (simulated) disk for this query.
    pub bytes_read: u64,
    /// CPU time spent answering this query.
    pub cpu_time: Duration,
    /// Modelled / measured I/O time spent answering this query.
    pub io_time: Duration,
}

impl QueryStats {
    /// Records that `n` raw series were examined in full resolution.
    #[inline]
    pub fn record_raw_series_examined(&mut self, n: u64) {
        self.raw_series_examined += n;
    }

    /// Records `n` lower-bound evaluations.
    #[inline]
    pub fn record_lower_bounds(&mut self, n: u64) {
        self.lower_bounds_computed += n;
    }

    /// Records a visit to a leaf node.
    #[inline]
    pub fn record_leaf_visit(&mut self) {
        self.leaves_visited += 1;
    }

    /// Records a visit to an internal node.
    #[inline]
    pub fn record_internal_visit(&mut self) {
        self.internal_nodes_visited += 1;
    }

    /// Records an early-abandoned distance computation.
    #[inline]
    pub fn record_early_abandon(&mut self) {
        self.early_abandons += 1;
    }

    /// Records disk traffic (pages + bytes).
    #[inline]
    pub fn record_io(&mut self, sequential_pages: u64, random_pages: u64, bytes: u64) {
        self.sequential_page_accesses += sequential_pages;
        self.random_page_accesses += random_pages;
        self.bytes_read += bytes;
    }

    /// Merges another stats record into this one (used when aggregating
    /// sub-operations of a single query).
    pub fn merge(&mut self, other: &QueryStats) {
        self.raw_series_examined += other.raw_series_examined;
        self.lower_bounds_computed += other.lower_bounds_computed;
        self.leaves_visited += other.leaves_visited;
        self.internal_nodes_visited += other.internal_nodes_visited;
        self.early_abandons += other.early_abandons;
        self.sequential_page_accesses += other.sequential_page_accesses;
        self.random_page_accesses += other.random_page_accesses;
        self.bytes_read += other.bytes_read;
        self.cpu_time += other.cpu_time;
        self.io_time += other.io_time;
    }

    /// The I/O recorded in these stats as a snapshot.
    ///
    /// Query-side writes are not charged to queries, so `bytes_written` is
    /// always zero here.
    pub fn io_snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            sequential_pages: self.sequential_page_accesses,
            random_pages: self.random_page_accesses,
            bytes_read: self.bytes_read,
            bytes_written: 0,
        }
    }

    /// Reconciles store-observed I/O into these stats: methods charge leaf
    /// and filter reads through their stats while the store counters cover
    /// raw-file traffic, so whichever accounting path recorded more pages
    /// wins and neither is lost.
    ///
    /// This is the single reconciliation rule of the suite — applied by the
    /// engine around every serial query, and by batch kernels per query so
    /// that batched stats stay bit-identical to the serial path.
    pub fn reconcile_io(&mut self, observed: IoSnapshot) {
        if observed.total_pages() > self.io_snapshot().total_pages() {
            self.sequential_page_accesses = observed.sequential_pages;
            self.random_page_accesses = observed.random_pages;
            self.bytes_read = observed.bytes_read;
        }
    }

    /// The pruning ratio of this query against a dataset of `dataset_size`
    /// series: `1 - examined / dataset_size`. Clamped to `[0, 1]`.
    pub fn pruning_ratio(&self, dataset_size: usize) -> f64 {
        if dataset_size == 0 {
            return 0.0;
        }
        let ratio = 1.0 - (self.raw_series_examined as f64 / dataset_size as f64);
        ratio.clamp(0.0, 1.0)
    }

    /// Total time (CPU + I/O) attributed to this query.
    pub fn total_time(&self) -> Duration {
        self.cpu_time + self.io_time
    }
}

/// Aggregated pruning-ratio statistics over a query workload (Figure 9).
#[derive(Clone, Debug, Default)]
pub struct PruningStats {
    ratios: Vec<f64>,
}

impl PruningStats {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the pruning ratio of one query.
    pub fn record(&mut self, stats: &QueryStats, dataset_size: usize) {
        self.ratios.push(stats.pruning_ratio(dataset_size));
    }

    /// Records a pre-computed ratio.
    pub fn record_ratio(&mut self, ratio: f64) {
        self.ratios.push(ratio.clamp(0.0, 1.0));
    }

    /// Number of queries recorded.
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// Whether no query has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// All recorded ratios.
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// Mean pruning ratio.
    pub fn mean(&self) -> f64 {
        if self.ratios.is_empty() {
            0.0
        } else {
            self.ratios.iter().sum::<f64>() / self.ratios.len() as f64
        }
    }

    /// Minimum pruning ratio (hardest query), or 0 when no query has been
    /// recorded — consistent with [`PruningStats::mean`] and
    /// [`PruningStats::max`], which also report 0 on an empty aggregate.
    pub fn min(&self) -> f64 {
        if self.ratios.is_empty() {
            return 0.0;
        }
        self.ratios
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .clamp(0.0, 1.0)
    }

    /// Maximum pruning ratio (easiest query).
    pub fn max(&self) -> f64 {
        self.ratios.iter().copied().fold(0.0, f64::max)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the recorded ratios.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.ratios.is_empty() {
            return 0.0;
        }
        let mut v = self.ratios.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        let pos = (q.clamp(0.0, 1.0) * (v.len() - 1) as f64).round() as usize;
        v[pos]
    }
}

/// Tightness-of-the-lower-bound aggregate (Figure 8f).
///
/// `TLB = lower_bound(Q', N) / average_true_distance(Q, N)`, averaged over all
/// (query, leaf) pairs. Callers record one observation per visited leaf.
#[derive(Clone, Debug, Default)]
pub struct Tlb {
    sum: f64,
    count: u64,
}

impl Tlb {
    /// Creates an empty TLB aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (query, leaf) observation.
    ///
    /// Observations with a non-positive average true distance are ignored
    /// (they would divide by zero and carry no information).
    pub fn record(&mut self, lower_bound: f64, average_true_distance: f64) {
        if average_true_distance > 0.0 && lower_bound.is_finite() {
            self.sum += (lower_bound / average_true_distance).clamp(0.0, 1.0);
            self.count += 1;
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The mean TLB over all observations (0 if none).
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Wall-clock time split into CPU and I/O components.
///
/// The paper computes CPU time as `total - I/O`; the harness does the same:
/// real elapsed time is measured with [`RunClock`] and the I/O component is
/// modelled from the storage counters by the cost model in `hydra-storage`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// CPU component.
    pub cpu: Duration,
    /// Input/output component.
    pub io: Duration,
}

impl TimeBreakdown {
    /// Creates a breakdown from its components.
    pub fn new(cpu: Duration, io: Duration) -> Self {
        Self { cpu, io }
    }

    /// Total time.
    pub fn total(&self) -> Duration {
        self.cpu + self.io
    }

    /// Adds another breakdown to this one.
    pub fn add(&mut self, other: TimeBreakdown) {
        self.cpu += other.cpu;
        self.io += other.io;
    }

    /// The fraction of total time that is CPU (0 when total is zero).
    pub fn cpu_fraction(&self) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.cpu.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// A simple stopwatch for measuring elapsed (assumed CPU) time of a code
/// region.
#[derive(Debug)]
pub struct RunClock {
    start: Instant,
}

impl RunClock {
    /// Starts the clock.
    pub fn start() -> Self {
        Self {
            // hydra-lint: allow(nondeterministic-source) measurement utility; answers never read it
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Restarts the clock and returns the time elapsed before the restart.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        // hydra-lint: allow(nondeterministic-source) measurement utility; answers never read it
        self.start = Instant::now();
        e
    }
}

impl Default for RunClock {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_stats_recording_and_merge() {
        let mut a = QueryStats::default();
        a.record_raw_series_examined(10);
        a.record_lower_bounds(100);
        a.record_leaf_visit();
        a.record_internal_visit();
        a.record_early_abandon();
        a.record_io(5, 2, 4096);

        let mut b = QueryStats::default();
        b.record_raw_series_examined(5);
        b.record_io(1, 1, 1024);
        b.cpu_time = Duration::from_millis(10);
        b.io_time = Duration::from_millis(5);

        a.merge(&b);
        assert_eq!(a.raw_series_examined, 15);
        assert_eq!(a.lower_bounds_computed, 100);
        assert_eq!(a.leaves_visited, 1);
        assert_eq!(a.internal_nodes_visited, 1);
        assert_eq!(a.early_abandons, 1);
        assert_eq!(a.sequential_page_accesses, 6);
        assert_eq!(a.random_page_accesses, 3);
        assert_eq!(a.bytes_read, 5120);
        assert_eq!(a.total_time(), Duration::from_millis(15));
    }

    #[test]
    fn reconcile_io_keeps_the_larger_recording() {
        let mut s = QueryStats::default();
        s.record_io(5, 1, 4096);
        // The store observed less: the stats-side recording survives.
        s.reconcile_io(IoSnapshot {
            sequential_pages: 1,
            random_pages: 1,
            bytes_read: 100,
            bytes_written: 0,
        });
        assert_eq!(s.sequential_page_accesses, 5);
        assert_eq!(s.bytes_read, 4096);
        // The store observed more: its counters replace the stats-side ones.
        s.reconcile_io(IoSnapshot {
            sequential_pages: 10,
            random_pages: 3,
            bytes_read: 1 << 20,
            bytes_written: 0,
        });
        assert_eq!(s.sequential_page_accesses, 10);
        assert_eq!(s.random_page_accesses, 3);
        assert_eq!(s.bytes_read, 1 << 20);
    }

    #[test]
    fn pruning_ratio_formula() {
        let mut s = QueryStats::default();
        s.record_raw_series_examined(25);
        assert!((s.pruning_ratio(100) - 0.75).abs() < 1e-12);
        assert_eq!(s.pruning_ratio(0), 0.0);
        // Examining more than the dataset (possible with re-reads) clamps to 0.
        s.record_raw_series_examined(1000);
        assert_eq!(s.pruning_ratio(100), 0.0);
    }

    #[test]
    fn pruning_stats_aggregation() {
        let mut p = PruningStats::new();
        assert!(p.is_empty());
        for r in [0.9, 0.5, 0.7, 1.0] {
            p.record_ratio(r);
        }
        let mut s = QueryStats::default();
        s.record_raw_series_examined(40);
        p.record(&s, 100); // 0.6
        assert_eq!(p.len(), 5);
        assert!((p.mean() - 0.74).abs() < 1e-12);
        assert!((p.min() - 0.5).abs() < 1e-12);
        assert!((p.max() - 1.0).abs() < 1e-12);
        assert!((p.quantile(0.5) - 0.7).abs() < 1e-12);
        assert_eq!(p.ratios().len(), 5);
    }

    #[test]
    fn empty_pruning_stats_report_zero_for_every_aggregate() {
        // An empty aggregate used to report min() = 1.0 (the INFINITY fold
        // seed clamped into range) while mean() and max() reported 0.0.
        let p = PruningStats::new();
        assert_eq!(p.min(), 0.0);
        assert_eq!(p.max(), 0.0);
        assert_eq!(p.mean(), 0.0);
        assert_eq!(p.quantile(0.5), 0.0);
    }

    #[test]
    fn pruning_stats_record_ratio_clamps() {
        let mut p = PruningStats::new();
        p.record_ratio(1.4);
        p.record_ratio(-0.3);
        assert_eq!(p.max(), 1.0);
        assert_eq!(p.min(), 0.0);
    }

    #[test]
    fn tlb_average() {
        let mut t = Tlb::new();
        assert_eq!(t.value(), 0.0);
        t.record(0.5, 1.0);
        t.record(1.0, 1.0);
        t.record(2.0, 0.0); // ignored: zero average distance
        t.record(f64::INFINITY, 1.0); // ignored: non-finite bound
        assert_eq!(t.count(), 2);
        assert!((t.value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tlb_clamps_bounds_above_true_distance() {
        // A correct lower bound never exceeds the true distance, but floating
        // point noise can nudge it above; TLB clamps each observation to 1.
        let mut t = Tlb::new();
        t.record(1.0000001, 1.0);
        assert!(t.value() <= 1.0);
    }

    #[test]
    fn time_breakdown_arithmetic() {
        let mut tb = TimeBreakdown::new(Duration::from_secs(3), Duration::from_secs(1));
        assert_eq!(tb.total(), Duration::from_secs(4));
        assert!((tb.cpu_fraction() - 0.75).abs() < 1e-12);
        tb.add(TimeBreakdown::new(
            Duration::from_secs(1),
            Duration::from_secs(3),
        ));
        assert_eq!(tb.total(), Duration::from_secs(8));
        assert!((tb.cpu_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(TimeBreakdown::default().cpu_fraction(), 0.0);
    }

    #[test]
    fn run_clock_measures_time() {
        let mut clock = RunClock::start();
        std::thread::sleep(Duration::from_millis(2));
        let lap = clock.lap();
        assert!(lap >= Duration::from_millis(1));
        assert!(clock.elapsed() < lap + Duration::from_secs(1));
    }
}

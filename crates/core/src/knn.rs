//! k-NN answer bookkeeping: bounded max-heaps of best-so-far candidates.

use std::cmp::Ordering;
// hydra-lint: allow(hash-iteration-order) membership tests only; never iterated
use std::collections::{BinaryHeap, HashSet};

/// A single answer to a similarity query: a series identifier and its
/// (non-squared) Euclidean distance to the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Answer {
    /// The position of the answering series in the dataset.
    pub id: usize,
    /// Euclidean distance between the query and the answering series.
    pub distance: f64,
}

impl Answer {
    /// Creates an answer.
    pub fn new(id: usize, distance: f64) -> Self {
        Self { id, distance }
    }
}

/// The guarantee an [`AnswerSet`] actually satisfies, attached by the method
/// that produced it (mirrors [`crate::query::AnswerMode`], which describes
/// what the caller *asked* for).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Guarantee {
    /// The answers are the true k nearest neighbours.
    #[default]
    Exact,
    /// No guarantee: the answers come from a single-leaf (ng-approximate)
    /// visit.
    None,
    /// Every answer distance is within a factor `(1 + epsilon)` of the
    /// corresponding exact distance.
    EpsilonBound {
        /// The relative error bound.
        epsilon: f64,
    },
    /// The δ-ε relaxation: the *target* contract is "with probability at
    /// least `delta`, every answer distance is within a factor
    /// `(1 + epsilon)` of exact". The current implementation is a
    /// deterministic stand-in for the sequel's histogram-based early stop —
    /// pruning thresholds are scaled by `delta` (see
    /// [`crate::query::AnswerMode::DeltaEpsilon`]) — so the hard bound it
    /// actually provides is the weaker `(1 + epsilon) / delta` factor, not a
    /// per-query probability. Treat the tag as "ε-relaxed with confidence
    /// knob δ", not as a verified probabilistic guarantee.
    ProbabilisticEpsilonBound {
        /// The confidence level.
        delta: f64,
        /// The relative error bound.
        epsilon: f64,
    },
    /// An anytime answer: the search ran out of its I/O [`crate::query::Budget`]
    /// and returned its best-so-far candidates. The answers are exact over the
    /// fraction of the dataset that was examined, but carry no guarantee about
    /// the rest.
    Truncated {
        /// Fraction of the dataset's raw series that were examined before the
        /// budget was exhausted (in `[0, 1]`).
        examined_fraction: f64,
    },
    /// A degraded scatter-gather answer: only `shards_answered` of
    /// `shards_total` shards contributed (the rest failed or were
    /// circuit-broken), so the answers are a merge over the surviving
    /// partitions only. `inner` is the guarantee that merge satisfies *over
    /// the surviving shards* — e.g. `Partial { inner: Truncated {..} }` for a
    /// deadline-degraded merge that also lost a shard.
    Partial {
        /// Shards whose answers made it into the merge.
        shards_answered: u32,
        /// Shards the query was scattered over.
        shards_total: u32,
        /// What the surviving shards' merge guarantees on its own.
        inner: BaseGuarantee,
    },
}

/// The non-partial core of a [`Guarantee`]: what a merge over the surviving
/// shards guarantees on its own. A separate (still `Copy`) enum rather than a
/// recursive `Box<Guarantee>` inside [`Guarantee::Partial`], so `Guarantee`
/// stays `Copy` — partial degradation composes with every base guarantee but
/// never nests.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum BaseGuarantee {
    /// See [`Guarantee::Exact`].
    #[default]
    Exact,
    /// See [`Guarantee::None`].
    None,
    /// See [`Guarantee::EpsilonBound`].
    EpsilonBound {
        /// The relative error bound.
        epsilon: f64,
    },
    /// See [`Guarantee::ProbabilisticEpsilonBound`].
    ProbabilisticEpsilonBound {
        /// The confidence level.
        delta: f64,
        /// The relative error bound.
        epsilon: f64,
    },
    /// See [`Guarantee::Truncated`].
    Truncated {
        /// Fraction of the surviving shards' raw series that were examined.
        examined_fraction: f64,
    },
}

impl From<BaseGuarantee> for Guarantee {
    fn from(base: BaseGuarantee) -> Self {
        match base {
            BaseGuarantee::Exact => Guarantee::Exact,
            BaseGuarantee::None => Guarantee::None,
            BaseGuarantee::EpsilonBound { epsilon } => Guarantee::EpsilonBound { epsilon },
            BaseGuarantee::ProbabilisticEpsilonBound { delta, epsilon } => {
                Guarantee::ProbabilisticEpsilonBound { delta, epsilon }
            }
            BaseGuarantee::Truncated { examined_fraction } => {
                Guarantee::Truncated { examined_fraction }
            }
        }
    }
}

impl Guarantee {
    /// Whether this guarantee promises the exact answer.
    #[inline]
    pub fn is_exact(&self) -> bool {
        matches!(self, Guarantee::Exact)
    }

    /// The non-partial core of this guarantee: the identity for base
    /// variants, the `inner` for [`Guarantee::Partial`].
    pub fn base(&self) -> BaseGuarantee {
        match *self {
            Guarantee::Exact => BaseGuarantee::Exact,
            Guarantee::None => BaseGuarantee::None,
            Guarantee::EpsilonBound { epsilon } => BaseGuarantee::EpsilonBound { epsilon },
            Guarantee::ProbabilisticEpsilonBound { delta, epsilon } => {
                BaseGuarantee::ProbabilisticEpsilonBound { delta, epsilon }
            }
            Guarantee::Truncated { examined_fraction } => {
                BaseGuarantee::Truncated { examined_fraction }
            }
            Guarantee::Partial { inner, .. } => inner,
        }
    }

    /// Tags `inner` as a partial merge over `shards_answered` of
    /// `shards_total` shards. A full merge (`shards_answered ==
    /// shards_total`) returns `inner` untouched, and an already-partial
    /// `inner` is flattened onto its base — partiality never nests.
    pub fn partial(shards_answered: u32, shards_total: u32, inner: Guarantee) -> Guarantee {
        if shards_answered >= shards_total {
            return inner;
        }
        Guarantee::Partial {
            shards_answered,
            shards_total,
            inner: inner.base(),
        }
    }

    /// Whether an answer carrying `self` may be served where `required` is
    /// the strongest guarantee the request could earn: `self` is equal to or
    /// stronger than `required`.
    ///
    /// The order: [`Guarantee::Exact`] covers everything; an ε bound covers
    /// equal-or-looser ε bounds and their probabilistic relaxations; a
    /// probabilistic bound covers equal-or-looser probabilistic bounds; any
    /// complete answer covers a truncation requirement; everything covers
    /// [`Guarantee::None`]. [`Guarantee::Partial`] covers nothing but an
    /// equal-or-weaker partial tag over the same shard layout — a degraded
    /// answer is never substituted where a full one could be earned.
    pub fn covers(&self, required: &Guarantee) -> bool {
        if matches!(required, Guarantee::None) {
            return true;
        }
        match (*self, *required) {
            (Guarantee::Exact, _) => true,
            (
                Guarantee::EpsilonBound { epsilon: have },
                Guarantee::EpsilonBound { epsilon: want },
            ) => have <= want,
            (
                Guarantee::EpsilonBound { epsilon: have },
                Guarantee::ProbabilisticEpsilonBound { epsilon: want, .. },
            ) => have <= want,
            (
                Guarantee::ProbabilisticEpsilonBound {
                    delta: dh,
                    epsilon: eh,
                },
                Guarantee::ProbabilisticEpsilonBound {
                    delta: dw,
                    epsilon: ew,
                },
            ) => dh >= dw && eh <= ew,
            (
                Guarantee::EpsilonBound { .. } | Guarantee::ProbabilisticEpsilonBound { .. },
                Guarantee::Truncated { .. },
            ) => true,
            (
                Guarantee::Truncated {
                    examined_fraction: have,
                },
                Guarantee::Truncated {
                    examined_fraction: want,
                },
            ) => have >= want,
            (
                Guarantee::Partial {
                    shards_answered: ah,
                    shards_total: th,
                    inner: ih,
                },
                Guarantee::Partial {
                    shards_answered: aw,
                    shards_total: tw,
                    inner: iw,
                },
            ) => th == tw && ah >= aw && Guarantee::from(ih).covers(&Guarantee::from(iw)),
            _ => false,
        }
    }
}

/// The completed answer set of a query, sorted by increasing distance, tagged
/// with the [`Guarantee`] it satisfies.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnswerSet {
    answers: Vec<Answer>,
    guarantee: Guarantee,
}

impl AnswerSet {
    /// Creates an answer set from unsorted answers (guarantee:
    /// [`Guarantee::Exact`]; approximate producers override it with
    /// [`AnswerSet::with_guarantee`]).
    pub fn from_unsorted(mut answers: Vec<Answer>) -> Self {
        answers.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        Self {
            answers,
            guarantee: Guarantee::Exact,
        }
    }

    /// Tags the answer set with the guarantee it satisfies.
    pub fn with_guarantee(mut self, guarantee: Guarantee) -> Self {
        self.guarantee = guarantee;
        self
    }

    /// The guarantee these answers satisfy.
    #[inline]
    pub fn guarantee(&self) -> Guarantee {
        self.guarantee
    }

    /// The answers, sorted by increasing distance (ties broken by id).
    pub fn answers(&self) -> &[Answer] {
        &self.answers
    }

    /// The number of answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Whether the answer set is empty.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// The nearest answer, if any.
    pub fn nearest(&self) -> Option<Answer> {
        self.answers.first().copied()
    }

    /// The distance of the k-th (1-based) nearest answer, if present.
    pub fn kth_distance(&self, k: usize) -> Option<f64> {
        if k == 0 {
            return None;
        }
        self.answers.get(k - 1).map(|a| a.distance)
    }

    /// Iterates over the answers.
    pub fn iter(&self) -> impl Iterator<Item = &Answer> {
        self.answers.iter()
    }

    /// Checks that two answer sets agree on distances within `tolerance`.
    ///
    /// Exactness in the paper's sense is about *distances*: two exact methods
    /// may return different series ids when candidates are tied at the same
    /// distance, so comparing ids directly would be too strict.
    pub fn distances_match(&self, other: &AnswerSet, tolerance: f64) -> bool {
        self.len() == other.len()
            && self
                .answers
                .iter()
                .zip(other.answers.iter())
                .all(|(a, b)| (a.distance - b.distance).abs() <= tolerance)
    }

    /// The error ratio of this (approximate) answer set against the `exact`
    /// one: the mean of `approx_distance / exact_distance` over the paired
    /// answer ranks (the sequel study's quality measure; `1.0` means the
    /// approximate answers are in fact exact).
    ///
    /// Pairs where both distances are zero contribute `1.0`; pairs where only
    /// the exact distance is zero contribute `+inf`. Returns `None` when
    /// either set is empty.
    pub fn error_ratio_vs(&self, exact: &AnswerSet) -> Option<f64> {
        let pairs = self.answers.iter().zip(exact.answers.iter());
        let n = self.len().min(exact.len());
        if n == 0 {
            return None;
        }
        let sum: f64 = pairs
            .map(|(a, e)| {
                if e.distance > 0.0 {
                    a.distance / e.distance
                } else if a.distance <= 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            })
            .sum();
        Some(sum / n as f64)
    }
}

impl From<KnnHeap> for AnswerSet {
    fn from(heap: KnnHeap) -> Self {
        heap.into_answer_set()
    }
}

/// What an intra-query worker observed when it evaluated one candidate with
/// an early-abandoning kernel under its own (possibly stale, possibly
/// tighter-than-serial) threshold.
///
/// Workers race ahead under thresholds fed by a [`crate::parallel::SharedBsf`];
/// the serial replay pass then reconstructs, via [`replay_outcome`], exactly
/// what the serial code would have done at its own threshold — bit-identical
/// answers *and* bit-identical `early_abandons` counters — recomputing a
/// candidate only when the recorded outcome cannot decide it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Outcome {
    /// The kernel ran to completion: the full squared distance (threshold
    /// independent — any kernel that completes returns this exact value).
    Computed(f64),
    /// The kernel abandoned; `threshold` is the squared threshold the worker
    /// actually abandoned against.
    Abandoned {
        /// The squared threshold in force when the worker abandoned.
        threshold: f64,
    },
}

/// Replays one worker-recorded [`Outcome`] against the serial path's current
/// squared threshold, returning exactly what the serial early-abandoning
/// kernel would have returned.
///
/// The reasoning rests on the kernel contract (satisfied by
/// [`crate::distance::squared_euclidean_early_abandon`] and
/// [`crate::distance::squared_euclidean_reordered`]): partial sums of squares
/// are monotone non-decreasing in the absence of NaN, and a final
/// `sum > threshold` check runs even when no intermediate check fired, so
/// **the kernel returns `None` if and only if the full squared sum exceeds
/// the threshold** (for NaN-free inputs). Therefore:
///
/// * `Computed(sq)` with finite-or-infinite `sq`: the serial kernel at
///   threshold `t` abandons iff `sq > t`, and otherwise returns this same
///   bit pattern;
/// * `Computed(NaN)`: a NaN element breaks partial-sum monotonicity (the
///   serial kernel might abandon at a finite intermediate partial the worker
///   sailed past under a looser threshold), so the candidate is recomputed
///   at the serial threshold;
/// * `Abandoned { threshold: w }` with `w >= t`: some partial exceeded `w`,
///   hence exceeds `t` too — the serial kernel provably abandons;
/// * `Abandoned { threshold: w }` with `w < t` (the worker was *tighter*
///   than serial, e.g. it raced ahead of the serial heap): the outcome is
///   inconclusive and the candidate is recomputed at the serial threshold.
///
/// `recompute(t)` must run the same kernel the worker used, against the same
/// operands, with threshold `t`.
#[inline]
pub fn replay_outcome(
    outcome: Outcome,
    serial_threshold: f64,
    recompute: impl FnOnce(f64) -> Option<f64>,
) -> Option<f64> {
    match outcome {
        Outcome::Computed(sq) if !sq.is_nan() => {
            if sq > serial_threshold {
                None
            } else {
                Some(sq)
            }
        }
        Outcome::Computed(_) => recompute(serial_threshold),
        Outcome::Abandoned { threshold } => {
            if threshold >= serial_threshold {
                None
            } else {
                recompute(serial_threshold)
            }
        }
    }
}

/// Max-heap entry ordered by distance (largest distance on top).
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    distance: f64,
    id: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.distance == other.distance && self.id == other.id
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on distance; ties broken on id for determinism.
        self.distance
            .total_cmp(&other.distance)
            .then(self.id.cmp(&other.id))
    }
}

/// A bounded best-so-far structure for k-NN search.
///
/// Maintains the `k` smallest distances seen so far; [`KnnHeap::threshold`]
/// returns the current best-so-far (bsf) pruning distance — the distance of
/// the k-th nearest candidate, or `+inf` while fewer than `k` candidates have
/// been seen.
///
/// Candidates are deduplicated by id: methods that may encounter the same
/// series through several paths (an approximate seeding phase plus an exact
/// traversal, for instance) can offer it repeatedly without corrupting the
/// answer set.
#[derive(Clone, Debug)]
pub struct KnnHeap {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
    // hydra-lint: allow(hash-iteration-order) duplicate-id guard; never iterated
    members: HashSet<usize>,
}

impl KnnHeap {
    /// Creates a heap that keeps the `k` nearest candidates.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            // hydra-lint: allow(hash-iteration-order) duplicate-id guard; never iterated
            members: HashSet::new(),
        }
    }

    /// The `k` this heap was created with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Clears the heap for a new query of `k` neighbours, keeping the heap's
    /// and the membership set's allocations.
    ///
    /// Batch kernels and workload drivers answer many queries back to back;
    /// resetting one heap per worker instead of allocating a fresh
    /// `KnnHeap` (heap buffer + hash set) per query keeps the hot loop
    /// allocation-free. A reset heap behaves exactly like
    /// [`KnnHeap::new(k)`].
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "k must be at least 1");
        self.k = k;
        self.heap.clear();
        self.members.clear();
    }

    /// The number of candidates currently held (at most `k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the heap already holds `k` candidates.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The current best-so-far pruning distance: the k-th nearest distance
    /// seen so far, or `+inf` if fewer than `k` candidates have been offered
    /// — or if the k-th slot is held by a NaN (corrupt) candidate.
    #[inline]
    pub fn threshold(&self) -> f64 {
        if self.is_full() {
            let top = self
                .heap
                .peek()
                .map(|e| e.distance)
                .unwrap_or(f64::INFINITY);
            // A NaN top (a corrupt series admitted while the heap was
            // under-full) must not poison pruning: report "no pruning yet",
            // exactly as if the heap were still under-full, so finite
            // candidates keep being offered and evict the NaN — the heap
            // maximum under `total_cmp`. Every pruning comparison downstream
            // (`lb >= threshold`, `distance < threshold`) then stays
            // conservative without being NaN-aware itself.
            if top.is_nan() {
                f64::INFINITY
            } else {
                top
            }
        } else {
            f64::INFINITY
        }
    }

    /// The squared best-so-far threshold (convenience for squared-distance
    /// kernels). Returns `+inf` when the heap is not yet full.
    #[inline]
    pub fn threshold_squared(&self) -> f64 {
        let t = self.threshold();
        if t.is_finite() {
            t * t
        } else {
            f64::INFINITY
        }
    }

    /// Offers a candidate; it is kept only if it is among the `k` nearest so
    /// far. Returns `true` if the candidate was kept.
    ///
    /// NaN (a corrupt series' distance) is tolerated but can never win: its
    /// sign is normalized so it sorts as the heap maximum under `total_cmp`,
    /// and [`KnnHeap::threshold`] treats a NaN top as "not full yet", so a
    /// NaN admitted while the heap was under-full is evicted by the next
    /// finite candidate and can never displace a finite one.
    pub fn offer(&mut self, id: usize, distance: f64) -> bool {
        debug_assert!(
            distance >= 0.0 || distance.is_nan(),
            "distances must be non-negative"
        );
        // A negative NaN would sort *below* every finite value under
        // `total_cmp` and masquerade as the best answer forever; force the
        // positive (heap-maximum) representation.
        let distance = if distance.is_nan() {
            f64::NAN
        } else {
            distance
        };
        if self.members.contains(&id) {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry { distance, id });
            self.members.insert(id);
            true
        } else if distance < self.threshold() {
            self.heap.push(HeapEntry { distance, id });
            self.members.insert(id);
            if let Some(evicted) = self.heap.pop() {
                self.members.remove(&evicted.id);
            }
            true
        } else {
            false
        }
    }

    /// Returns `true` if the series `id` is already part of the best-so-far
    /// set (and therefore does not need to be re-examined).
    pub fn contains(&self, id: usize) -> bool {
        self.members.contains(&id)
    }

    /// Returns `true` if a candidate whose lower bound is `lower_bound` could
    /// still enter the answer set (i.e. the bound is below the threshold).
    #[inline]
    pub fn would_accept(&self, lower_bound: f64) -> bool {
        lower_bound < self.threshold() || !self.is_full()
    }

    /// Finalizes the heap into a sorted answer set.
    pub fn into_answer_set(mut self) -> AnswerSet {
        self.take_answer_set()
    }

    /// Drains the heap into a sorted answer set, leaving the heap empty but
    /// with its allocations intact — the companion of [`KnnHeap::reset`] for
    /// loops that answer many queries with one reused heap.
    pub fn take_answer_set(&mut self) -> AnswerSet {
        self.members.clear();
        AnswerSet::from_unsorted(
            self.heap
                .drain()
                .map(|e| Answer::new(e.id, e.distance))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_keeps_k_smallest() {
        let mut h = KnnHeap::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 4.0), (3, 2.0), (4, 3.0)] {
            h.offer(id, d);
        }
        let ans = h.into_answer_set();
        let dists: Vec<f64> = ans.iter().map(|a| a.distance).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
        let ids: Vec<usize> = ans.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn threshold_is_infinite_until_full() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.threshold(), f64::INFINITY);
        assert_eq!(h.threshold_squared(), f64::INFINITY);
        h.offer(0, 1.0);
        assert_eq!(h.threshold(), f64::INFINITY);
        h.offer(1, 2.0);
        assert_eq!(h.threshold(), 2.0);
        assert_eq!(h.threshold_squared(), 4.0);
    }

    #[test]
    fn offer_rejects_far_candidates_when_full() {
        let mut h = KnnHeap::new(1);
        assert!(h.offer(0, 1.0));
        assert!(!h.offer(1, 2.0));
        assert!(h.offer(2, 0.5));
        let ans = h.into_answer_set();
        assert_eq!(ans.nearest().unwrap().id, 2);
    }

    #[test]
    fn would_accept_follows_threshold() {
        let mut h = KnnHeap::new(1);
        assert!(h.would_accept(1e12));
        h.offer(0, 3.0);
        assert!(h.would_accept(2.9));
        assert!(!h.would_accept(3.0));
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_is_rejected() {
        let _ = KnnHeap::new(0);
    }

    #[test]
    fn nan_admitted_while_underfull_never_poisons_the_heap() {
        // Regression: linear-scan paths offer raw distances, so one corrupt
        // (NaN) series can enter while the heap is under-full. Once the heap
        // fills, the NaN top must not disable admission: the threshold stays
        // +inf, finite candidates keep flowing in, and the NaN is evicted
        // first.
        let mut h = KnnHeap::new(2);
        assert!(h.offer(0, f64::NAN));
        assert!(h.offer(1, 5.0));
        assert!(h.is_full());
        assert_eq!(h.threshold(), f64::INFINITY, "NaN top must not prune");
        assert_eq!(h.threshold_squared(), f64::INFINITY);
        assert!(h.would_accept(1e12));
        assert!(h.offer(2, 3.0), "a finite candidate must evict the NaN");
        assert!(!h.contains(0));
        assert_eq!(h.threshold(), 5.0, "pruning resumes once the NaN is gone");
        let ans = h.into_answer_set();
        let ids: Vec<usize> = ans.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![2, 1]);
        assert!(ans.iter().all(|a| a.distance.is_finite()));
    }

    #[test]
    fn nan_never_displaces_a_finite_candidate() {
        let mut h = KnnHeap::new(1);
        assert!(h.offer(0, 5.0));
        assert!(!h.offer(1, f64::NAN));
        assert_eq!(h.into_answer_set().nearest().unwrap().id, 0);
    }

    #[test]
    fn negative_nan_is_normalized_before_insertion() {
        // Unnormalized, -NaN sorts below every finite value under `total_cmp`
        // and would be kept as the "best" answer forever.
        let neg_nan = -f64::NAN;
        assert!(neg_nan.is_sign_negative());
        let mut h = KnnHeap::new(1);
        assert!(h.offer(0, neg_nan));
        assert!(h.offer(1, 2.0), "a finite candidate must displace -NaN");
        let ans = h.into_answer_set();
        assert_eq!(ans.nearest().unwrap().id, 1);
        assert_eq!(ans.nearest().unwrap().distance, 2.0);
    }

    #[test]
    fn answer_set_sorting_and_accessors() {
        let set = AnswerSet::from_unsorted(vec![
            Answer::new(7, 2.0),
            Answer::new(1, 0.5),
            Answer::new(3, 1.0),
        ]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(set.nearest().unwrap().id, 1);
        assert_eq!(set.kth_distance(1), Some(0.5));
        assert_eq!(set.kth_distance(3), Some(2.0));
        assert_eq!(set.kth_distance(4), None);
        assert_eq!(set.kth_distance(0), None);
    }

    #[test]
    fn answer_set_tie_break_by_id() {
        let set = AnswerSet::from_unsorted(vec![Answer::new(9, 1.0), Answer::new(2, 1.0)]);
        let ids: Vec<usize> = set.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![2, 9]);
    }

    #[test]
    fn distances_match_tolerates_small_differences() {
        let a = AnswerSet::from_unsorted(vec![Answer::new(0, 1.0), Answer::new(1, 2.0)]);
        let b = AnswerSet::from_unsorted(vec![Answer::new(5, 1.0 + 1e-9), Answer::new(6, 2.0)]);
        assert!(a.distances_match(&b, 1e-6));
        let c = AnswerSet::from_unsorted(vec![Answer::new(5, 1.5)]);
        assert!(!a.distances_match(&c, 1e-6));
    }

    #[test]
    fn duplicate_ids_are_ignored() {
        let mut h = KnnHeap::new(3);
        assert!(h.offer(7, 1.0));
        assert!(!h.offer(7, 1.0), "re-offering the same id must be a no-op");
        assert!(h.contains(7));
        assert!(!h.contains(8));
        h.offer(8, 2.0);
        h.offer(9, 3.0);
        // 7 is evicted once three closer candidates arrive.
        h.offer(1, 0.1);
        h.offer(2, 0.2);
        h.offer(3, 0.3);
        assert!(!h.contains(7));
        let ans = h.into_answer_set();
        let ids: Vec<usize> = ans.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn reset_reuses_a_heap_across_queries() {
        let mut h = KnnHeap::new(2);
        h.offer(0, 1.0);
        h.offer(1, 2.0);
        h.offer(2, 0.5);
        // A reset heap must behave exactly like a fresh one, including a
        // different k and cleared membership.
        h.reset(3);
        assert_eq!(h.k(), 3);
        assert!(h.is_empty());
        assert_eq!(h.threshold(), f64::INFINITY);
        assert!(!h.contains(0), "membership must be cleared");
        for (id, d) in [(5, 4.0), (6, 1.0), (7, 3.0), (8, 2.0)] {
            h.offer(id, d);
        }
        let ids: Vec<usize> = h.into_answer_set().iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![6, 8, 7]);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn reset_rejects_zero_k() {
        KnnHeap::new(1).reset(0);
    }

    #[test]
    fn take_answer_set_drains_without_consuming() {
        let mut h = KnnHeap::new(2);
        h.offer(3, 1.0);
        h.offer(9, 0.5);
        let first = h.take_answer_set();
        assert_eq!(
            first.iter().map(|a| a.id).collect::<Vec<_>>(),
            vec![9, 3],
            "drained in sorted order"
        );
        // The drained heap is immediately reusable.
        assert!(h.is_empty());
        assert!(!h.contains(9));
        h.reset(1);
        h.offer(1, 2.0);
        assert_eq!(h.take_answer_set().nearest().unwrap().id, 1);
    }

    #[test]
    fn heap_conversion_via_from_impl() {
        let mut h = KnnHeap::new(2);
        h.offer(0, 1.0);
        let set: AnswerSet = h.into();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn guarantee_defaults_to_exact_and_tags_travel_with_the_set() {
        let set = AnswerSet::from_unsorted(vec![Answer::new(0, 1.0)]);
        assert_eq!(set.guarantee(), Guarantee::Exact);
        assert!(set.guarantee().is_exact());
        let tagged = set.with_guarantee(Guarantee::EpsilonBound { epsilon: 0.5 });
        assert_eq!(tagged.guarantee(), Guarantee::EpsilonBound { epsilon: 0.5 });
        assert!(!tagged.guarantee().is_exact());
        // The guarantee participates in equality: an approximate set is not
        // "equal" to an exact set with the same distances.
        let exact = AnswerSet::from_unsorted(vec![Answer::new(0, 1.0)]);
        assert_ne!(tagged, exact);
    }

    #[test]
    fn replay_outcome_decides_from_the_recorded_evidence() {
        let panic_recompute = |_t: f64| -> Option<f64> { panic!("must not recompute") };
        // A finite computed distance decides both ways without recomputing.
        assert_eq!(
            replay_outcome(Outcome::Computed(4.0), 5.0, panic_recompute),
            Some(4.0)
        );
        assert_eq!(
            replay_outcome(Outcome::Computed(4.0), 4.0, panic_recompute),
            Some(4.0)
        );
        assert_eq!(
            replay_outcome(Outcome::Computed(4.0), 3.0, panic_recompute),
            None
        );
        // An abandon under a looser-or-equal threshold proves the serial
        // kernel abandons too.
        assert_eq!(
            replay_outcome(Outcome::Abandoned { threshold: 9.0 }, 9.0, panic_recompute),
            None
        );
        assert_eq!(
            replay_outcome(Outcome::Abandoned { threshold: 9.0 }, 2.0, panic_recompute),
            None
        );
        // Inconclusive outcomes fall back to the serial kernel.
        assert_eq!(
            replay_outcome(Outcome::Abandoned { threshold: 1.0 }, 5.0, |t| {
                assert_eq!(t, 5.0);
                Some(3.5)
            }),
            Some(3.5)
        );
        assert_eq!(
            replay_outcome(Outcome::Computed(f64::NAN), 5.0, |t| {
                assert_eq!(t, 5.0);
                None
            }),
            None
        );
    }

    /// End-to-end oracle for the worker/replay protocol: workers scan range
    /// chunks with *their own* empty heaps plus a shared best-so-far (their
    /// thresholds are both staler and tighter than the serial heap's at
    /// various points), and the serial replay over the recorded outcomes must
    /// reproduce the serial scan exactly — same answers, same abandon count,
    /// zero tolerance.
    #[test]
    fn replayed_worker_outcomes_reproduce_the_serial_scan_exactly() {
        use crate::distance::squared_euclidean_early_abandon;
        use crate::parallel::SharedBsf;

        let len = 24usize;
        let count = 160usize;
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 30) as f32) - 2.0
        };
        let series: Vec<Vec<f32>> = (0..count)
            .map(|_| (0..len).map(|_| next()).collect())
            .collect();
        let query: Vec<f32> = (0..len).map(|_| next()).collect();
        let k = 3;

        // Serial reference.
        let mut serial = KnnHeap::new(k);
        let mut serial_abandons = 0u64;
        for (id, s) in series.iter().enumerate() {
            match squared_euclidean_early_abandon(&query, s, serial.threshold_squared()) {
                Some(sq) => {
                    serial.offer(id, sq.sqrt());
                }
                None => serial_abandons += 1,
            }
        }
        let serial_answers = serial.into_answer_set();

        // Worker phase: 4 contiguous ranges, per-range empty local heaps,
        // pruning against min(local, shared bsf).
        let bsf = SharedBsf::new(f64::INFINITY);
        let mut outcomes: Vec<Outcome> = Vec::with_capacity(count);
        for range in crate::parallel::split_ranges(count, 4) {
            let mut local = KnnHeap::new(k);
            for id in range {
                let threshold = local.threshold_squared().min(bsf.get());
                match squared_euclidean_early_abandon(&query, &series[id], threshold) {
                    Some(sq) => {
                        outcomes.push(Outcome::Computed(sq));
                        local.offer(id, sq.sqrt());
                        bsf.update_min(local.threshold_squared());
                    }
                    None => outcomes.push(Outcome::Abandoned { threshold }),
                }
            }
        }

        // Serial replay over the outcomes.
        let mut replayed = KnnHeap::new(k);
        let mut replay_abandons = 0u64;
        for (id, outcome) in outcomes.iter().enumerate() {
            let threshold = replayed.threshold_squared();
            match replay_outcome(*outcome, threshold, |t| {
                squared_euclidean_early_abandon(&query, &series[id], t)
            }) {
                Some(sq) => {
                    replayed.offer(id, sq.sqrt());
                }
                None => replay_abandons += 1,
            }
        }
        assert_eq!(replayed.into_answer_set(), serial_answers);
        assert_eq!(replay_abandons, serial_abandons);
    }

    #[test]
    fn error_ratio_vs_exact() {
        let exact = AnswerSet::from_unsorted(vec![Answer::new(0, 1.0), Answer::new(1, 2.0)]);
        let approx = AnswerSet::from_unsorted(vec![Answer::new(3, 1.5), Answer::new(4, 2.0)]);
        let ratio = approx.error_ratio_vs(&exact).unwrap();
        assert!((ratio - 1.25).abs() < 1e-12);
        // Both zero: counts as exact.
        let z = AnswerSet::from_unsorted(vec![Answer::new(0, 0.0)]);
        assert_eq!(z.error_ratio_vs(&z).unwrap(), 1.0);
        // Only the exact distance zero: infinite error.
        let far = AnswerSet::from_unsorted(vec![Answer::new(9, 3.0)]);
        assert!(far.error_ratio_vs(&z).unwrap().is_infinite());
        // Empty sets have no ratio.
        assert_eq!(AnswerSet::default().error_ratio_vs(&exact), None);
    }

    #[test]
    fn partial_guarantee_flattens_and_round_trips() {
        let inner = Guarantee::Truncated {
            examined_fraction: 0.5,
        };
        let partial = Guarantee::partial(2, 4, inner);
        match partial {
            Guarantee::Partial {
                shards_answered,
                shards_total,
                inner,
            } => {
                assert_eq!((shards_answered, shards_total), (2, 4));
                assert_eq!(Guarantee::from(inner), {
                    Guarantee::Truncated {
                        examined_fraction: 0.5,
                    }
                });
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        // A full merge carries no partial tag.
        assert_eq!(Guarantee::partial(4, 4, inner), inner);
        // Partiality never nests: re-tagging flattens onto the base.
        let renested = Guarantee::partial(1, 4, partial);
        assert_eq!(
            renested,
            Guarantee::Partial {
                shards_answered: 1,
                shards_total: 4,
                inner: BaseGuarantee::Truncated {
                    examined_fraction: 0.5
                },
            }
        );
        // `base()` unwraps the partial tag back to the inner core.
        assert_eq!(Guarantee::from(partial.base()), inner);
        assert_eq!(Guarantee::from(exact_base()), Guarantee::Exact);
    }

    fn exact_base() -> BaseGuarantee {
        Guarantee::Exact.base()
    }

    #[test]
    fn covers_orders_guarantees_by_strength() {
        let exact = Guarantee::Exact;
        let eps = |e: f64| Guarantee::EpsilonBound { epsilon: e };
        let deps = |d: f64, e: f64| Guarantee::ProbabilisticEpsilonBound {
            delta: d,
            epsilon: e,
        };
        let trunc = |f: f64| Guarantee::Truncated {
            examined_fraction: f,
        };
        // Exact covers everything; everything covers None.
        for g in [
            exact,
            eps(0.1),
            deps(0.9, 0.1),
            trunc(0.5),
            Guarantee::None,
            Guarantee::partial(1, 2, exact),
        ] {
            assert!(exact.covers(&g), "Exact must cover {g:?}");
            assert!(g.covers(&Guarantee::None), "{g:?} must cover None");
        }
        // ε bounds: tighter covers looser, and the probabilistic relaxation.
        assert!(eps(0.1).covers(&eps(0.2)));
        assert!(!eps(0.2).covers(&eps(0.1)));
        assert!(eps(0.1).covers(&deps(0.9, 0.1)));
        assert!(!deps(0.9, 0.1).covers(&eps(0.1)), "probabilistic is weaker");
        assert!(deps(0.9, 0.1).covers(&deps(0.8, 0.2)));
        assert!(!deps(0.8, 0.1).covers(&deps(0.9, 0.1)));
        // Truncation: complete answers cover it, wider examination covers
        // narrower, and truncated never covers a complete requirement.
        assert!(eps(0.3).covers(&trunc(0.0)));
        assert!(trunc(0.6).covers(&trunc(0.2)));
        assert!(!trunc(0.2).covers(&trunc(0.6)));
        assert!(!trunc(0.9).covers(&exact));
        // Partial covers nothing but an equal-or-weaker partial tag over the
        // same layout — degraded answers never launder into full ones.
        let p23 = Guarantee::partial(2, 3, exact);
        assert!(!p23.covers(&exact));
        assert!(!p23.covers(&trunc(0.0)));
        assert!(p23.covers(&Guarantee::partial(1, 3, exact)));
        assert!(
            !p23.covers(&Guarantee::partial(1, 4, exact)),
            "layout differs"
        );
        assert!(!Guarantee::partial(1, 3, exact).covers(&p23));
    }
}

//! Euclidean distance kernels.
//!
//! The paper's baseline, the UCR Suite, applies three optimizations to serial
//! Euclidean distance scans, and the study applies the same optimizations to
//! every method:
//!
//! 1. **squared distances** — the square root is monotone, so comparisons can
//!    be done on squared distances and the root taken once at the end;
//! 2. **early abandoning** — stop accumulating as soon as the partial sum
//!    exceeds the best-so-far distance;
//! 3. **reordered early abandoning** — visit dimensions in decreasing order of
//!    the query's absolute (Z-normalized) value, so large contributions are
//!    accumulated first and abandoning happens earlier.
//!
//! All kernels accumulate in `f64` for numerical robustness while accepting
//! `f32` inputs (single-precision storage, as in the paper).
//!
//! These loops are the innermost code of all ten methods, so each kernel
//! accumulates into **four independent lanes**: the unrolled form breaks the
//! loop-carried dependency on a single accumulator (4× more add latency can
//! be in flight) and gives LLVM straight-line bodies it auto-vectorizes with
//! SIMD converts and FMAs. The early-abandoning kernels keep the UCR-Suite
//! cadence of one threshold check per 8 accumulated dimensions — checking on
//! every element costs more in branches than it saves for typical series
//! lengths — by testing the lane sum after every 8-element block.
//!
//! The contiguous kernels ([`squared_euclidean`],
//! [`squared_euclidean_early_abandon`]) dispatch through [`crate::simd`] to
//! explicit SSE2/AVX2 implementations when the CPU has them; every dispatch
//! target is bit-identical to the portable 4-lane path. The *reordered*
//! kernels stay scalar — their per-dimension gathers defeat SIMD loads.

const LANES: usize = 4;
/// Threshold-check cadence of the early-abandoning kernels, in dimensions.
const CHECK_EVERY: usize = 8;

#[inline(always)]
fn lane_sum(acc: [f64; LANES]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Full squared Euclidean distance between two equal-length slices.
///
/// Dispatches to the process-wide [`crate::simd::active_kernel`] (explicit
/// SSE2/AVX2 when detected); every kernel is bit-identical to the portable
/// 4-lane path, so results do not depend on the dispatch decision.
///
/// # Panics
/// Panics (debug builds) if the slices have different lengths.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "series must have equal length");
    // Every kernel truncates to the common length, so release builds keep
    // the zip-like behavior for mismatched inputs (the per-slice remainders
    // would otherwise pair up misaligned elements).
    crate::simd::squared_euclidean(a, b)
}

/// Full Euclidean distance between two equal-length slices.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Squared Euclidean distance with early abandoning.
///
/// Returns `None` as soon as the partial squared sum exceeds `threshold`
/// (the squared best-so-far distance); otherwise returns the full squared
/// distance. Dispatches like [`squared_euclidean`], keeping the UCR-Suite
/// cadence of one threshold check per 8 accumulated dimensions on every
/// kernel.
#[inline]
pub fn squared_euclidean_early_abandon(a: &[f32], b: &[f32], threshold: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "series must have equal length");
    crate::simd::squared_euclidean_early_abandon(a, b, threshold)
}

/// Euclidean distance with early abandoning on the (non-squared) threshold.
///
/// Convenience wrapper over [`squared_euclidean_early_abandon`].
#[inline]
pub fn euclidean_early_abandon(a: &[f32], b: &[f32], best_so_far: f64) -> Option<f64> {
    squared_euclidean_early_abandon(a, b, best_so_far * best_so_far).map(f64::sqrt)
}

/// A precomputed visiting order over a query's dimensions, sorted by
/// decreasing absolute value of the query.
///
/// On Z-normalized data the query sections farthest from the mean contribute
/// the most to the distance; visiting those first makes early abandoning
/// trigger sooner (UCR-Suite optimization "reordering early abandoning").
#[derive(Clone, Debug)]
pub struct QueryOrder {
    order: Vec<u32>,
}

impl QueryOrder {
    /// Builds the visiting order for `query`.
    ///
    /// Sorting uses `f32::total_cmp`, so NaN-bearing queries still get a
    /// deterministic order (NaN magnitudes sort before every finite value,
    /// equal magnitudes keep their original index order).
    pub fn new(query: &[f32]) -> Self {
        let mut order: Vec<u32> = (0..query.len() as u32).collect();
        order.sort_by(|&i, &j| query[j as usize].abs().total_cmp(&query[i as usize].abs()));
        Self { order }
    }

    /// The dimension indices in visiting order.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.order
    }

    /// The number of dimensions covered by this order.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns true when the order covers zero dimensions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Squared Euclidean distance with *reordered* early abandoning.
///
/// Dimensions are visited in the order given by `order` (typically built once
/// per query with [`QueryOrder::new`]). Returns `None` as soon as the partial
/// sum exceeds `threshold`.
///
/// The gathers forced by the permutation defeat SIMD loads, but the four
/// independent accumulator lanes still overlap the dependent-add latency.
///
/// # Panics
/// Panics (debug builds) if `order` does not match the slices' length.
#[inline]
pub fn squared_euclidean_reordered(
    query: &[f32],
    candidate: &[f32],
    order: &QueryOrder,
    threshold: f64,
) -> Option<f64> {
    debug_assert_eq!(
        query.len(),
        candidate.len(),
        "series must have equal length"
    );
    debug_assert_eq!(
        order.len(),
        query.len(),
        "order must cover the query length"
    );
    let mut acc = [0.0f64; LANES];
    let blocks = order.indices().chunks_exact(CHECK_EVERY);
    let tail = blocks.remainder();
    for block in blocks {
        for step in 0..CHECK_EVERY / LANES {
            for (lane, slot) in acc.iter_mut().enumerate() {
                let i = block[step * LANES + lane] as usize;
                let d = (query[i] - candidate[i]) as f64;
                *slot += d * d;
            }
        }
        if lane_sum(acc) > threshold {
            return None;
        }
    }
    let mut sum = lane_sum(acc);
    for &i in tail {
        let i = i as usize;
        let d = (query[i] - candidate[i]) as f64;
        sum += d * d;
    }
    if sum > threshold {
        None
    } else {
        Some(sum)
    }
}

/// Query-major batched evaluation: one candidate against many queries, each
/// with reordered early abandoning against its **own** threshold.
///
/// This is the inner kernel of the batched scans: the candidate series is
/// loaded from memory once and stays cache-resident while all `Q` queries
/// evaluate against it in turn, so a batch of queries costs one data pass
/// instead of `Q`. Each query runs the scalar reordered kernel with its own
/// 4 accumulator lanes — the queries are *not* interleaved within a block
/// (their per-query dimension orders differ, so cross-query SIMD would
/// change nothing about the gathers); the win here is the candidate's cache
/// residency, not extra instruction-level parallelism. Per query the
/// arithmetic — lane structure, accumulation order, the every-8-dimensions
/// threshold check — is exactly [`squared_euclidean_reordered`], so each
/// `out[i]` is bit-identical to a standalone per-query call; batching
/// changes only the memory traffic.
///
/// `out[i]` is `Some(squared_distance)` or `None` when query `i` abandoned.
///
/// # Panics
/// Panics (debug builds) if the slice lengths disagree.
pub fn squared_euclidean_multi_reordered(
    queries: &[&[f32]],
    orders: &[QueryOrder],
    candidate: &[f32],
    thresholds: &[f64],
    out: &mut [Option<f64>],
) {
    debug_assert_eq!(queries.len(), orders.len());
    debug_assert_eq!(queries.len(), thresholds.len());
    debug_assert_eq!(queries.len(), out.len());
    for (((slot, query), order), &threshold) in out
        .iter_mut()
        .zip(queries.iter())
        .zip(orders.iter())
        .zip(thresholds.iter())
    {
        *slot = squared_euclidean_reordered(query, candidate, order, threshold);
    }
}

/// Euclidean distance with reordered early abandoning (non-squared threshold).
#[inline]
pub fn euclidean_reordered(
    query: &[f32],
    candidate: &[f32],
    order: &QueryOrder,
    best_so_far: f64,
) -> Option<f64> {
    squared_euclidean_reordered(query, candidate, order, best_so_far * best_so_far).map(f64::sqrt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_and_plain_distances_agree() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 0.0, 3.0];
        let sq = squared_euclidean(&a, &b);
        assert!((sq - 5.0).abs() < 1e-9);
        assert!((euclidean(&a, &b) - 5.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = [0.3, -1.2, 4.5, 0.0, 2.2];
        assert_eq!(squared_euclidean(&a, &a), 0.0);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn unrolled_kernel_matches_reference_accumulation() {
        // Lengths around the 4-lane and 8-block boundaries, against a plain
        // sequential accumulation.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 100] {
            let a: Vec<f32> = (0..n)
                .map(|i| ((i * 37) % 17) as f32 * 0.25 - 2.0)
                .collect();
            let b: Vec<f32> = (0..n).map(|i| ((i * 53) % 23) as f32 * 0.2 - 2.3).collect();
            let reference: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let d = (x - y) as f64;
                    d * d
                })
                .sum();
            let got = squared_euclidean(&a, &b);
            assert!(
                (got - reference).abs() <= 1e-9 * reference.max(1.0),
                "n={n}"
            );
            let ea = squared_euclidean_early_abandon(&a, &b, f64::INFINITY).unwrap();
            assert!((ea - reference).abs() <= 1e-9 * reference.max(1.0), "n={n}");
            let order = QueryOrder::new(&a);
            let re = squared_euclidean_reordered(&a, &b, &order, f64::INFINITY).unwrap();
            assert!((re - reference).abs() <= 1e-9 * reference.max(1.0), "n={n}");
        }
    }

    #[test]
    fn early_abandon_returns_full_distance_under_threshold() {
        let a: Vec<f32> = (0..64).map(|i| i as f32 * 0.1).collect();
        let b: Vec<f32> = (0..64).map(|i| i as f32 * 0.1 + 0.5).collect();
        let exact = squared_euclidean(&a, &b);
        let ea = squared_euclidean_early_abandon(&a, &b, exact + 1.0);
        assert!(ea.is_some());
        assert!((ea.unwrap() - exact).abs() < 1e-9);
    }

    #[test]
    fn early_abandon_abandons_over_threshold() {
        let a = vec![0.0f32; 64];
        let b = vec![10.0f32; 64];
        // True squared distance is 6400; threshold of 1 must abandon.
        assert_eq!(squared_euclidean_early_abandon(&a, &b, 1.0), None);
    }

    #[test]
    fn early_abandon_threshold_is_inclusive() {
        let a = [0.0f32, 0.0];
        let b = [1.0f32, 1.0];
        // squared distance exactly 2.0; threshold 2.0 should NOT abandon.
        assert_eq!(squared_euclidean_early_abandon(&a, &b, 2.0), Some(2.0));
        assert_eq!(squared_euclidean_early_abandon(&a, &b, 1.999), None);
    }

    #[test]
    fn query_order_sorts_by_decreasing_magnitude() {
        let q = [0.1f32, -5.0, 2.0, 0.0];
        let order = QueryOrder::new(&q);
        assert_eq!(order.indices(), &[1, 2, 0, 3]);
        assert_eq!(order.len(), 4);
        assert!(!order.is_empty());
    }

    #[test]
    fn query_order_is_deterministic_with_nans() {
        // NaN magnitudes must produce a total, deterministic order instead of
        // depending on comparison failures.
        let q = [1.0f32, f32::NAN, -3.0, f32::NAN, 0.5];
        let a = QueryOrder::new(&q);
        let b = QueryOrder::new(&q);
        assert_eq!(a.indices(), b.indices());
        // total_cmp ranks NaN above every finite magnitude, so the NaN
        // dimensions are visited first (indices keep their relative order),
        // then the finite ones by decreasing magnitude.
        assert_eq!(a.indices(), &[1, 3, 2, 0, 4]);
    }

    #[test]
    fn reordered_distance_matches_plain_distance() {
        let q: Vec<f32> = (0..100).map(|i| ((i * 37) % 17) as f32 - 8.0).collect();
        let c: Vec<f32> = (0..100).map(|i| ((i * 53) % 23) as f32 - 11.0).collect();
        let order = QueryOrder::new(&q);
        let exact = squared_euclidean(&q, &c);
        let got = squared_euclidean_reordered(&q, &c, &order, f64::INFINITY).unwrap();
        assert!((got - exact).abs() < 1e-6);
    }

    #[test]
    fn reordered_abandons_like_plain_early_abandon() {
        let q = vec![3.0f32; 32];
        let c = vec![-3.0f32; 32];
        let order = QueryOrder::new(&q);
        assert_eq!(squared_euclidean_reordered(&q, &c, &order, 10.0), None);
    }

    #[test]
    fn multi_query_kernel_matches_per_query_calls_bit_for_bit() {
        let candidate: Vec<f32> = (0..96)
            .map(|i| ((i * 31) % 19) as f32 * 0.3 - 2.0)
            .collect();
        let queries: Vec<Vec<f32>> = (0..5)
            .map(|q| {
                (0..96)
                    .map(|i| ((i * 7 + q * 13) % 23) as f32 * 0.25 - 2.5)
                    .collect()
            })
            .collect();
        let query_refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        let orders: Vec<QueryOrder> = queries.iter().map(|q| QueryOrder::new(q)).collect();
        // Mix of thresholds so some queries abandon and others complete.
        let thresholds: Vec<f64> = (0..5)
            .map(|q| {
                let full = squared_euclidean(&queries[q], &candidate);
                if q % 2 == 0 {
                    full + 1.0
                } else {
                    full * 0.25
                }
            })
            .collect();
        let mut out = vec![None; 5];
        squared_euclidean_multi_reordered(&query_refs, &orders, &candidate, &thresholds, &mut out);
        for q in 0..5 {
            let expected =
                squared_euclidean_reordered(&queries[q], &candidate, &orders[q], thresholds[q]);
            assert_eq!(out[q], expected, "query {q}");
        }
        assert!(out.iter().any(|o| o.is_none()), "tight thresholds abandon");
        assert!(out.iter().any(|o| o.is_some()), "loose thresholds complete");
    }

    #[test]
    fn euclidean_wrappers_take_unsquared_threshold() {
        let a = [0.0f32; 16];
        let b = [1.0f32; 16];
        // distance = 4.0
        assert!(euclidean_early_abandon(&a, &b, 5.0).is_some());
        assert_eq!(euclidean_early_abandon(&a, &b, 3.0), None);
        let order = QueryOrder::new(&a);
        assert!(euclidean_reordered(&a, &b, &order, 4.0).is_some());
        assert_eq!(euclidean_reordered(&a, &b, &order, 3.9), None);
    }

    #[test]
    fn empty_series_have_zero_distance() {
        let a: [f32; 0] = [];
        assert_eq!(squared_euclidean(&a, &a), 0.0);
        assert_eq!(squared_euclidean_early_abandon(&a, &a, 0.0), Some(0.0));
    }
}

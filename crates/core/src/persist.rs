//! Index persistence: the interface a method implements to survive on disk.
//!
//! The paper's experiments treat indexes as *on-disk artifacts*: the build
//! cost is paid once and amortized over every query workload that follows
//! (Figures 4, 6 and 7 all assume a materialized index). This module defines
//! the method-side half of that contract:
//!
//! * [`SnapshotSink`] / [`SnapshotSource`] — byte-oriented serialization
//!   endpoints with fixed-width little-endian primitives. Floats round-trip
//!   through their IEEE-754 bit patterns, so a reloaded index is
//!   **bit-identical** to the saved one (including infinities in synopsis
//!   ranges).
//! * [`PersistentIndex`] — implemented by every index that can snapshot its
//!   built structure. The payload must be self-contained: everything needed
//!   to reconstruct the structure (parameters, tables, node arenas) is
//!   serialized, and `load_payload` reattaches the result to a fresh store.
//!
//! The container format around the payload — magic, version, fingerprints,
//! checksum, and the counted `std::fs` file I/O — lives in
//! `hydra_storage::snapshot`; this crate only defines the traits so the
//! method crates do not depend on the storage layout.

use crate::method::ExactIndex;
use crate::{Error, Result};

/// A byte sink a [`PersistentIndex`] serializes its payload into.
///
/// All provided primitives are fixed-width little-endian; floats are written
/// as their IEEE-754 bit patterns so values (including non-finite ones)
/// round-trip exactly.
pub trait SnapshotSink {
    /// Appends raw bytes to the payload.
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<()>;

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) -> Result<()> {
        self.write_bytes(&[v])
    }

    /// Writes a `u16` (little-endian).
    fn put_u16(&mut self, v: u16) -> Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes a `u32` (little-endian).
    fn put_u32(&mut self, v: u32) -> Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes a `u64` (little-endian).
    fn put_u64(&mut self, v: u64) -> Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes a `usize` as a `u64`.
    fn put_usize(&mut self, v: usize) -> Result<()> {
        self.put_u64(v as u64)
    }

    /// Writes an `f32` as its bit pattern.
    fn put_f32(&mut self, v: f32) -> Result<()> {
        self.put_u32(v.to_bits())
    }

    /// Writes an `f64` as its bit pattern.
    fn put_f64(&mut self, v: f64) -> Result<()> {
        self.put_u64(v.to_bits())
    }
}

/// Any in-memory buffer collects payload bytes (used by the storage-layer
/// writer and by tests).
impl SnapshotSink for Vec<u8> {
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        self.extend_from_slice(bytes);
        Ok(())
    }
}

/// A byte source a [`PersistentIndex`] deserializes its payload from.
///
/// Running out of bytes is reported as [`Error::InvalidSnapshot`] (a
/// truncated file), never a panic.
pub trait SnapshotSource {
    /// Fills `buf` from the payload, erroring on truncation.
    fn read_bytes(&mut self, buf: &mut [u8]) -> Result<()>;

    /// The number of payload bytes left, when the container knows it.
    ///
    /// Used by [`SnapshotSource::get_count`] to reject impossible element
    /// counts *before* allocating for them.
    fn remaining_hint(&self) -> Option<u64> {
        None
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.read_bytes(&mut b)?;
        Ok(b[0])
    }

    /// Reads a `u16` (little-endian).
    fn get_u16(&mut self) -> Result<u16> {
        let mut b = [0u8; 2];
        self.read_bytes(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a `u32` (little-endian).
    fn get_u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_bytes(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a `u64` (little-endian).
    fn get_u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read_bytes(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `usize` written with [`SnapshotSink::put_usize`].
    fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| Error::InvalidSnapshot(format!("length {v} exceeds the address space")))
    }

    /// Reads an `f32` from its bit pattern.
    fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` from its bit pattern.
    fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an element count and validates it against the remaining payload
    /// (`elem_bytes` is the minimum serialized size of one element), so a
    /// corrupt count fails with a typed error instead of a huge allocation.
    fn get_count(&mut self, elem_bytes: usize) -> Result<usize> {
        let count = self.get_usize()?;
        if let Some(remaining) = self.remaining_hint() {
            if (count as u64).saturating_mul(elem_bytes.max(1) as u64) > remaining {
                return Err(Error::InvalidSnapshot(format!(
                    "element count {count} cannot fit in the {remaining} remaining payload bytes"
                )));
            }
        }
        Ok(count)
    }
}

/// A slice-backed source (used by the storage-layer reader and by tests).
///
/// Wraps a cursor over borrowed bytes; [`SnapshotSource::remaining_hint`] is
/// exact.
#[derive(Debug)]
pub struct SliceSource<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Creates a source reading `data` from the start.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// The number of bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// The number of bytes left.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

impl SnapshotSource for SliceSource<'_> {
    fn read_bytes(&mut self, buf: &mut [u8]) -> Result<()> {
        if self.remaining() < buf.len() {
            return Err(Error::InvalidSnapshot(format!(
                "truncated payload: needed {} bytes, {} left",
                buf.len(),
                self.remaining()
            )));
        }
        buf.copy_from_slice(&self.data[self.pos..self.pos + buf.len()]);
        self.pos += buf.len();
        Ok(())
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.remaining() as u64)
    }
}

/// An index whose built structure can be saved to and reloaded from a
/// snapshot.
///
/// Implementations must guarantee the round-trip invariant the test suite
/// enforces: an index reloaded through `load_payload` answers every query
/// with results *and work counters* bit-identical to the freshly built
/// instance it was saved from.
pub trait PersistentIndex: ExactIndex {
    /// The environment a loaded index reattaches to — typically the
    /// instrumented store holding the raw dataset the index was built over.
    type Context;

    /// Stable identifier of this method's payload format, embedded in the
    /// snapshot header so a file is never decoded by the wrong method.
    fn snapshot_kind() -> &'static str
    where
        Self: Sized;

    /// Serializes the complete built structure into `out`.
    fn save_payload(&self, out: &mut dyn SnapshotSink) -> Result<()>;

    /// Reconstructs the index from a payload, reattaching it to `ctx`.
    fn load_payload(ctx: Self::Context, input: &mut dyn SnapshotSource) -> Result<Self>
    where
        Self: Sized;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(0xAB).unwrap();
        buf.put_u16(0xBEEF).unwrap();
        buf.put_u32(0xDEAD_BEEF).unwrap();
        buf.put_u64(u64::MAX - 1).unwrap();
        buf.put_usize(42).unwrap();
        buf.put_f32(f32::NEG_INFINITY).unwrap();
        buf.put_f64(f64::from_bits(0x7FF8_0000_0000_0001)).unwrap(); // a NaN payload
        buf.put_f64(-0.0).unwrap();

        let mut src = SliceSource::new(&buf);
        assert_eq!(src.get_u8().unwrap(), 0xAB);
        assert_eq!(src.get_u16().unwrap(), 0xBEEF);
        assert_eq!(src.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(src.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(src.get_usize().unwrap(), 42);
        assert_eq!(
            src.get_f32().unwrap().to_bits(),
            f32::NEG_INFINITY.to_bits()
        );
        assert_eq!(src.get_f64().unwrap().to_bits(), 0x7FF8_0000_0000_0001);
        assert_eq!(src.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(src.remaining(), 0);
        assert_eq!(src.consumed(), buf.len());
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u32(7).unwrap();
        let mut src = SliceSource::new(&buf[..2]);
        let err = src.get_u32().unwrap_err();
        assert!(matches!(err, Error::InvalidSnapshot(_)), "{err}");
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_usize(usize::MAX / 2).unwrap();
        let mut src = SliceSource::new(&buf);
        let err = src.get_count(16).unwrap_err();
        assert!(matches!(err, Error::InvalidSnapshot(_)), "{err}");
        // A plausible count passes.
        let mut buf2: Vec<u8> = Vec::new();
        buf2.put_usize(3).unwrap();
        buf2.write_bytes(&[0u8; 12]).unwrap();
        let mut src2 = SliceSource::new(&buf2);
        assert_eq!(src2.get_count(4).unwrap(), 3);
    }
}

//! A stable, dependency-free FNV-1a hasher.
//!
//! The workspace needs content fingerprints in two places: the snapshot
//! container keys its files on (dataset, options) fingerprints, and the
//! serving layer's answer cache keys entries on (dataset fingerprint,
//! canonical query hash, mode). Both must be **stable across processes,
//! platforms and runs** — `std`'s `DefaultHasher` is explicitly seeded per
//! process, so a tiny fixed hasher is vendored here instead of depended on.
//!
//! The implementation is 64-bit FNV-1a over an explicit byte encoding:
//! callers feed primitives through the typed `write_*` methods, which encode
//! little-endian, so a hash documents its own canonical byte layout.

/// 64-bit FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher over a canonical byte encoding.
#[derive(Clone, Debug)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: OFFSET }
    }

    /// Feeds raw bytes.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Feeds a `u8` tag byte (enum discriminants in canonical encodings).
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u32` little-endian.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` little-endian.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f32` by bit pattern (total over NaNs: distinct payloads hash
    /// distinctly, and `-0.0 != 0.0`).
    #[inline]
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Feeds an `f64` by bit pattern.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // Published FNV-1a test vectors.
        let hash = |s: &str| {
            let mut h = Fnv1a::new();
            h.write_bytes(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn typed_writes_are_prefix_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = Fnv1a::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish(), "order matters");
    }

    #[test]
    fn float_bits_distinguish_signed_zero_and_nan_payloads() {
        let mut pos = Fnv1a::new();
        pos.write_f32(0.0);
        let mut neg = Fnv1a::new();
        neg.write_f32(-0.0);
        assert_ne!(pos.finish(), neg.finish());

        let mut q = Fnv1a::new();
        q.write_f64(f64::NAN);
        let mut r = Fnv1a::new();
        r.write_f64(f64::from_bits(f64::NAN.to_bits() ^ 1));
        assert_ne!(q.finish(), r.finish());
    }
}

//! Error handling for the hydra crates.

use std::fmt;

/// Result alias used throughout the hydra crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the similarity search library.
#[derive(Debug)]
pub enum Error {
    /// A query or candidate series does not match the expected length.
    LengthMismatch {
        /// The length expected by the index / dataset.
        expected: usize,
        /// The length that was provided.
        actual: usize,
    },
    /// An operation was attempted on an empty dataset or index.
    EmptyDataset,
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Human-readable name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
    /// The requested series, node, or page does not exist.
    NotFound(String),
    /// An underlying I/O error (real files or the simulated store).
    ///
    /// `retriable` classifies the fault for the engine's
    /// [`crate::engine::RetryPolicy`]: transient faults (interrupted reads,
    /// bit-flips detected by a checksum) are worth retrying, while structural
    /// faults (missing files, permission errors) are not. `attempts` records
    /// how many times the operation was tried before the error was surfaced.
    Io {
        /// The underlying I/O error.
        source: std::io::Error,
        /// Whether retrying the operation may succeed.
        retriable: bool,
        /// How many attempts were made (including the failing one).
        attempts: u32,
    },
    /// An internal fault captured at the engine boundary (e.g. a panic caught
    /// by `catch_unwind` inside `answer_workload`). Never retriable.
    Internal(String),
    /// An index invariant was violated (indicates a bug in the index).
    CorruptIndex(String),
    /// A snapshot file is malformed or damaged: bad magic, unsupported
    /// format version, checksum mismatch, or truncation.
    InvalidSnapshot(String),
    /// A structurally valid snapshot that does not describe the requested
    /// index: different method, dataset fingerprint, or build options.
    StaleSnapshot(String),
    /// The method cannot answer queries in the requested
    /// [`crate::query::AnswerMode`] (and no exact fallback was requested via
    /// [`crate::engine::FallbackPolicy`]).
    UnsupportedMode {
        /// The method that rejected the query.
        method: &'static str,
        /// The requested answering mode.
        mode: crate::query::AnswerMode,
    },
    /// The method cannot answer this kind of query at all (e.g. a range query
    /// posed to a k-NN-only method).
    UnsupportedQuery {
        /// The method that rejected the query.
        method: &'static str,
        /// Why the query is unanswerable.
        reason: String,
    },
    /// The serving layer's admission queue is full: the request was shed
    /// before any work was done on it. Clients may retry after backoff; the
    /// request itself was never partially executed.
    Overloaded {
        /// The admission-queue capacity that was exceeded.
        capacity: usize,
    },
    /// A shard's circuit breaker is open: the shard failed repeatedly and its
    /// sub-query was rejected without being attempted. Like
    /// [`Error::Overloaded`], nothing was partially executed and a later
    /// retry may succeed (the breaker half-opens after its priced cooldown).
    CircuitOpen {
        /// The shard whose breaker rejected the sub-query.
        shard: usize,
    },
}

impl Error {
    /// Convenience constructor for invalid-parameter errors.
    pub fn invalid_parameter(name: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name,
            message: message.into(),
        }
    }

    /// Convenience constructor for unsupported-mode errors.
    pub fn unsupported_mode(method: &'static str, mode: crate::query::AnswerMode) -> Self {
        Error::UnsupportedMode { method, mode }
    }

    /// Convenience constructor for unsupported-query errors.
    pub fn unsupported_query(method: &'static str, reason: impl Into<String>) -> Self {
        Error::UnsupportedQuery {
            method,
            reason: reason.into(),
        }
    }

    /// Wraps an I/O error as a *retriable* fault (a transient failure the
    /// engine's retry policy may re-attempt).
    pub fn retriable_io(source: std::io::Error) -> Self {
        Error::Io {
            source,
            retriable: true,
            attempts: 1,
        }
    }

    /// Whether a retry of the failed operation may succeed.
    ///
    /// This is the single retriability classification every retry loop
    /// consults — the engine's [`crate::engine::RetryPolicy`], the serving
    /// layer's per-shard retries, and client-side backoff alike:
    ///
    /// * transient I/O faults ([`Error::Io`] with `retriable: true` — the
    ///   classification the storage layer stamps on interrupted reads and
    ///   detected bit-flips) clear after a bounded number of attempts;
    /// * [`Error::Overloaded`] and [`Error::CircuitOpen`] rejected the
    ///   request *before* any work happened, so resubmitting after backoff
    ///   is always safe and eventually succeeds once pressure drains or the
    ///   breaker half-opens;
    /// * everything else — structural I/O faults, [`Error::UnsupportedMode`],
    ///   [`Error::InvalidSnapshot`], corrupt indexes, invalid parameters — is
    ///   deterministic: retrying reproduces the same failure.
    #[inline]
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            Error::Io {
                retriable: true,
                ..
            } | Error::Overloaded { .. }
                | Error::CircuitOpen { .. }
        )
    }

    /// For [`Error::Io`], overwrites the recorded attempt count (used by the
    /// engine after exhausting its retry budget); other variants are returned
    /// unchanged.
    pub fn with_attempts(self, attempts: u32) -> Self {
        match self {
            Error::Io {
                source, retriable, ..
            } => Error::Io {
                source,
                retriable,
                attempts,
            },
            other => other,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "series length mismatch: expected {expected}, got {actual}"
                )
            }
            Error::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::Io {
                source, attempts, ..
            } => {
                if *attempts > 1 {
                    write!(f, "I/O error: {source} (after {attempts} attempts)")
                } else {
                    write!(f, "I/O error: {source}")
                }
            }
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
            Error::CorruptIndex(msg) => write!(f, "corrupt index: {msg}"),
            Error::InvalidSnapshot(msg) => write!(f, "invalid snapshot: {msg}"),
            Error::StaleSnapshot(msg) => write!(f, "stale snapshot: {msg}"),
            Error::UnsupportedMode { method, mode } => {
                write!(f, "{method} does not support {mode} answering")
            }
            Error::UnsupportedQuery { method, reason } => {
                write!(f, "{method} cannot answer this query: {reason}")
            }
            Error::Overloaded { capacity } => {
                write!(
                    f,
                    "service overloaded: admission queue at capacity ({capacity} in flight)"
                )
            }
            Error::CircuitOpen { shard } => {
                write!(f, "shard {shard} rejected: circuit breaker is open")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(source: std::io::Error) -> Self {
        Error::Io {
            source,
            retriable: false,
            attempts: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::LengthMismatch {
            expected: 256,
            actual: 128,
        };
        assert!(e.to_string().contains("256"));
        assert!(e.to_string().contains("128"));

        let e = Error::invalid_parameter("leaf_capacity", "must be positive");
        assert!(e.to_string().contains("leaf_capacity"));
        assert!(e.to_string().contains("must be positive"));

        assert!(Error::EmptyDataset.to_string().contains("non-empty"));
        assert!(Error::NotFound("node 7".into())
            .to_string()
            .contains("node 7"));
        assert!(Error::CorruptIndex("bad fanout".into())
            .to_string()
            .contains("bad fanout"));
        assert!(Error::InvalidSnapshot("checksum mismatch".into())
            .to_string()
            .contains("checksum mismatch"));
        assert!(Error::StaleSnapshot("dataset fingerprint".into())
            .to_string()
            .contains("dataset fingerprint"));

        let e = Error::unsupported_mode("UCR-Suite", crate::query::AnswerMode::NgApproximate);
        assert!(e.to_string().contains("UCR-Suite"));
        assert!(e.to_string().contains("ng"));

        let e = Error::unsupported_query("M-tree", "range queries are not supported");
        assert!(e.to_string().contains("M-tree"));
        assert!(e.to_string().contains("range"));

        let e = Error::Overloaded { capacity: 64 };
        assert!(e.to_string().contains("overloaded"));
        assert!(e.to_string().contains("64"));

        let e = Error::CircuitOpen { shard: 3 };
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("circuit breaker"));
    }

    #[test]
    fn retriability_classification_is_unified() {
        // Pre-execution rejections: nothing ran, a backed-off retry is safe.
        assert!(Error::Overloaded { capacity: 8 }.is_retriable());
        assert!(Error::CircuitOpen { shard: 0 }.is_retriable());
        // Transient I/O clears within its planned attempts.
        assert!(Error::retriable_io(std::io::Error::other("hiccup")).is_retriable());
        // Deterministic failures reproduce on retry: never retriable.
        assert!(
            !Error::unsupported_mode("scan", crate::query::AnswerMode::NgApproximate)
                .is_retriable()
        );
        assert!(!Error::InvalidSnapshot("bad magic".into()).is_retriable());
        assert!(!Error::StaleSnapshot("fingerprint".into()).is_retriable());
        assert!(!Error::CorruptIndex("fanout".into()).is_retriable());
        assert!(!Error::EmptyDataset.is_retriable());
        assert!(!Error::from(std::io::Error::other("structural")).is_retriable());
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(!e.is_retriable());
    }

    #[test]
    fn retriable_io_classification_and_attempts() {
        let e = Error::retriable_io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "transient",
        ));
        assert!(e.is_retriable());
        let e = e.with_attempts(3);
        match &e {
            Error::Io {
                retriable,
                attempts,
                ..
            } => {
                assert!(*retriable);
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(e.to_string().contains("3 attempts"));
        // Non-Io variants pass through with_attempts unchanged.
        assert!(matches!(
            Error::EmptyDataset.with_attempts(5),
            Error::EmptyDataset
        ));
        assert!(!Error::Internal("poisoned".into()).is_retriable());
        assert!(Error::Internal("poisoned".into())
            .to_string()
            .contains("poisoned"));
    }

    #[test]
    fn question_mark_works_against_box_dyn_error() {
        fn inner() -> Result<()> {
            Err(Error::retriable_io(std::io::Error::other("disk hiccup")))
        }
        fn outer() -> std::result::Result<(), Box<dyn std::error::Error>> {
            inner()?;
            Ok(())
        }
        let err = outer().unwrap_err();
        assert!(err.to_string().contains("disk hiccup"));
        assert!(err.source().is_some());
    }
}

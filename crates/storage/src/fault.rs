//! Deterministic fault injection for the instrumented store.
//!
//! A [`FaultPlan`] decides — as a **pure function** of its seed, a fault
//! stream, the access key (series id / snapshot name hash), and the retry
//! attempt — whether a given storage access fails and how. Nothing is drawn
//! from a stateful RNG, so the fault sequence is independent of thread
//! interleaving and batch order: the same seed produces the same faults for
//! every access no matter how the workload is scheduled, which preserves the
//! repo's bit-identity discipline (chaos runs are reproducible, and a
//! disabled plan is exactly today's fault-free behaviour).
//!
//! The taxonomy mirrors what a disk-bound similarity-search service actually
//! sees:
//!
//! * **transient read errors** (`EINTR`-style hiccups) — retriable; each
//!   faulting key has a *planned failure count*, so a retry policy with
//!   enough attempts always clears them;
//! * **page bit-flips** detected by a checksum — surfaced as
//!   `InvalidData`, also retriable (a re-read models fetching the page from
//!   a replica), with their own planned failure count;
//! * **latency surcharges** — extra *cost-model* pages charged to the
//!   counters (never wall clock, so modelled I/O time degrades
//!   deterministically);
//! * **snapshot corruption** — a byte flipped in a just-written snapshot
//!   file, exercising the quarantine-and-rebuild recovery path.

use std::cell::Cell;

/// Per-fault-class rates and knobs. All rates are probabilities in `[0, 1]`
/// and default to zero (no faults).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that a read key suffers transient read errors.
    pub read_error: f64,
    /// Probability that a read key suffers detected page bit-flips.
    pub bit_flip: f64,
    /// Probability that a read is charged a latency surcharge.
    pub latency: f64,
    /// Surcharge size in random cost-model pages.
    pub latency_pages: u64,
    /// Probability that a saved snapshot is corrupted on disk.
    pub snapshot_corruption: f64,
    /// Upper bound on a faulting key's planned failure count: a transient
    /// fault (or bit-flip) on a key clears after `1..=max_transient_attempts`
    /// failed attempts, so a retry policy with more attempts always recovers.
    pub max_transient_attempts: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            read_error: 0.0,
            bit_flip: 0.0,
            latency: 0.0,
            latency_pages: 4,
            snapshot_corruption: 0.0,
            max_transient_attempts: 2,
        }
    }
}

impl FaultConfig {
    /// A moderate all-classes mix for CLI-driven chaos runs (`--fault-seed`):
    /// a few percent of keys hiccup or flip, one in twenty reads pays a
    /// latency surcharge, one in five snapshot saves is corrupted. Every
    /// transient clears within two attempts, so the default retry policy
    /// always recovers.
    pub fn standard() -> Self {
        Self {
            read_error: 0.03,
            bit_flip: 0.01,
            latency: 0.05,
            latency_pages: 4,
            snapshot_corruption: 0.2,
            max_transient_attempts: 2,
        }
    }
}

/// The class of an injected read failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// A transient I/O hiccup (maps to [`std::io::ErrorKind::Interrupted`]).
    Transient,
    /// A detected page bit-flip (maps to [`std::io::ErrorKind::InvalidData`]).
    Corruption,
}

impl ReadError {
    /// The injected failure as an [`std::io::Error`].
    pub fn to_io_error(self) -> std::io::Error {
        match self {
            ReadError::Transient => std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "transient read fault (injected)",
            ),
            ReadError::Corruption => std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "page bit-flip detected (injected)",
            ),
        }
    }
}

/// What the plan decided for one read access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadOutcome {
    /// The injected failure, if any.
    pub error: Option<ReadError>,
    /// Extra random cost-model pages to charge for this access.
    pub surcharge_pages: u64,
}

impl ReadOutcome {
    /// A clean access: no error, no surcharge.
    pub fn clean() -> Self {
        Self {
            error: None,
            surcharge_pages: 0,
        }
    }
}

// Distinct fault streams, so e.g. the read-error and bit-flip decisions for
// the same key are independent draws.
const STREAM_READ_ERROR: u64 = 1;
const STREAM_READ_COUNT: u64 = 2;
const STREAM_BIT_FLIP: u64 = 3;
const STREAM_FLIP_COUNT: u64 = 4;
const STREAM_LATENCY: u64 = 5;
const STREAM_SNAPSHOT: u64 = 6;

/// A seeded, deterministic fault plan. See the module docs for the contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
    active: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultPlan {
    /// The no-fault plan: every decision is "clean", bit-identical to a store
    /// without fault injection.
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            config: FaultConfig::default(),
            active: false,
        }
    }

    /// A plan that injects faults at the configured rates, keyed on `seed`.
    pub fn seeded(seed: u64, config: FaultConfig) -> Self {
        Self {
            seed,
            config,
            active: true,
        }
    }

    /// Whether this plan injects any faults at all.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The plan's seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's configuration.
    #[inline]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Derives the fault plan of shard `shard`: the same configuration under
    /// a seed mixed from `(seed, shard)`, so every shard draws an
    /// **independent** deterministic fault stream — shard 0's faulting keys
    /// are uncorrelated with shard 1's, exactly like independent disks
    /// failing independently. Derivation is a pure function (same base seed
    /// and shard index ⇒ same derived plan), and deriving from a disabled
    /// plan stays disabled. Note the derived seed differs from the base seed
    /// even for shard 0: per-shard streams are a separate universe from the
    /// unsharded stream, so re-partitioning never replays the old faults.
    pub fn for_shard(&self, shard: usize) -> FaultPlan {
        if !self.active {
            return *self;
        }
        // splitmix64 finalizer over the (seed, shard) mix, matching the
        // per-access hash's mixing quality so adjacent shards decorrelate.
        let mut z = self.seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(
            (shard as u64)
                .wrapping_add(1)
                .wrapping_mul(0xd1342543de82ef95),
        );
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        FaultPlan::seeded(z ^ (z >> 31), self.config)
    }

    /// splitmix64-style finalizer over (seed, stream, key, attempt).
    fn hash(&self, stream: u64, key: u64, attempt: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(stream.wrapping_mul(0xd1342543de82ef95))
            .wrapping_add(key.wrapping_mul(0x2545f4914f6cdd1d))
            .wrapping_add(attempt.wrapping_mul(0x94d049bb133111eb));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` — a pure function of its arguments.
    fn unit(&self, stream: u64, key: u64, attempt: u64) -> f64 {
        (self.hash(stream, key, attempt) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// How many attempts a faulting key fails before clearing (`1..=max`).
    fn planned_failures(&self, count_stream: u64, key: u64) -> u64 {
        let max = u64::from(self.config.max_transient_attempts.max(1));
        1 + self.hash(count_stream, key, 0) % max
    }

    /// The plan's decision for reading `key` on retry `attempt` (0-based).
    ///
    /// The *whether this key faults* draws ignore the attempt, while the
    /// planned failure count bounds how long the fault persists — so a
    /// faulting read fails identically on every run, and clears after the
    /// same number of retries on every run.
    pub fn read_outcome(&self, key: u64, attempt: u32) -> ReadOutcome {
        if !self.active {
            return ReadOutcome::clean();
        }
        let surcharge_pages = if self.config.latency > 0.0
            && self.unit(STREAM_LATENCY, key, u64::from(attempt)) < self.config.latency
        {
            self.config.latency_pages
        } else {
            0
        };
        let error = if self.config.read_error > 0.0
            && self.unit(STREAM_READ_ERROR, key, 0) < self.config.read_error
            && u64::from(attempt) < self.planned_failures(STREAM_READ_COUNT, key)
        {
            Some(ReadError::Transient)
        } else if self.config.bit_flip > 0.0
            && self.unit(STREAM_BIT_FLIP, key, 0) < self.config.bit_flip
            && u64::from(attempt) < self.planned_failures(STREAM_FLIP_COUNT, key)
        {
            Some(ReadError::Corruption)
        } else {
            None
        };
        ReadOutcome {
            error,
            surcharge_pages,
        }
    }

    /// Whether the snapshot identified by `key` should be corrupted on save.
    pub fn corrupt_snapshot(&self, key: u64) -> bool {
        self.active
            && self.config.snapshot_corruption > 0.0
            && self.unit(STREAM_SNAPSHOT, key, 0) < self.config.snapshot_corruption
    }
}

/// FNV-1a over arbitrary bytes: the key for path-identified accesses
/// (snapshot files), so the same file always draws the same fault decisions.
pub fn key_for_bytes(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

thread_local! {
    // Which retry attempt the engine is running on this thread; set through
    // `IoSource::begin_attempt` so fault decisions can clear across retries.
    static ATTEMPT: Cell<u32> = const { Cell::new(0) };
}

/// Records the engine's current retry attempt (0-based) for this thread.
pub fn set_attempt(attempt: u32) {
    ATTEMPT.with(|c| c.set(attempt));
}

/// The calling thread's current retry attempt (0-based).
pub fn current_attempt() -> u32 {
    ATTEMPT.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_config() -> FaultConfig {
        FaultConfig {
            read_error: 0.3,
            bit_flip: 0.2,
            latency: 0.25,
            latency_pages: 4,
            snapshot_corruption: 0.5,
            max_transient_attempts: 3,
        }
    }

    #[test]
    fn disabled_plan_is_always_clean() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_active());
        for key in 0..1000 {
            assert_eq!(plan.read_outcome(key, 0), ReadOutcome::clean());
            assert!(!plan.corrupt_snapshot(key));
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = FaultPlan::seeded(42, chaos_config());
        let b = FaultPlan::seeded(42, chaos_config());
        for key in 0..2000 {
            for attempt in 0..4 {
                assert_eq!(a.read_outcome(key, attempt), b.read_outcome(key, attempt));
            }
            assert_eq!(a.corrupt_snapshot(key), b.corrupt_snapshot(key));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, chaos_config());
        let b = FaultPlan::seeded(2, chaos_config());
        let differs = (0..2000).any(|key| a.read_outcome(key, 0) != b.read_outcome(key, 0));
        assert!(differs);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::seeded(7, chaos_config());
        let n = 10_000u64;
        let errors = (0..n)
            .filter(|&k| plan.read_outcome(k, 0).error.is_some())
            .count() as f64
            / n as f64;
        // read_error ∪ bit_flip ≈ 0.3 + 0.7·0.2 = 0.44.
        assert!((0.35..0.55).contains(&errors), "error rate {errors}");
        let surcharged = (0..n)
            .filter(|&k| plan.read_outcome(k, 0).surcharge_pages > 0)
            .count() as f64
            / n as f64;
        assert!(
            (0.2..0.3).contains(&surcharged),
            "latency rate {surcharged}"
        );
    }

    #[test]
    fn transient_faults_clear_within_the_planned_attempts() {
        let plan = FaultPlan::seeded(11, chaos_config());
        let max = u32::from(chaos_config().max_transient_attempts as u16);
        for key in 0..2000 {
            if plan.read_outcome(key, 0).error.is_some() {
                // By attempt `max` every planned failure count is exhausted.
                assert_eq!(plan.read_outcome(key, max).error, None, "key {key}");
            }
        }
    }

    #[test]
    fn attempt_tracking_is_thread_local() {
        assert_eq!(current_attempt(), 0);
        set_attempt(2);
        assert_eq!(current_attempt(), 2);
        std::thread::spawn(|| assert_eq!(current_attempt(), 0))
            .join()
            .unwrap();
        set_attempt(0);
    }

    #[test]
    fn shard_derivation_is_deterministic_and_independent() {
        let base = FaultPlan::seeded(42, chaos_config());
        // Pure function: same base and shard index, same derived plan.
        assert_eq!(base.for_shard(0), base.for_shard(0));
        assert_eq!(base.for_shard(3), base.for_shard(3));
        // Shards draw distinct streams — and none replays the base stream.
        let seeds: Vec<u64> = (0..4).map(|s| base.for_shard(s).seed()).collect();
        for (i, &a) in seeds.iter().enumerate() {
            assert_ne!(a, base.seed(), "shard {i} must not replay the base");
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b, "shards must draw independent streams");
            }
        }
        // The configuration rides along unchanged.
        assert_eq!(*base.for_shard(1).config(), chaos_config());
        // Streams decorrelate: two shards disagree on at least one key.
        let (s0, s1) = (base.for_shard(0), base.for_shard(1));
        assert!((0..2000).any(|k| s0.read_outcome(k, 0) != s1.read_outcome(k, 0)));
    }

    #[test]
    fn shard_derivation_of_a_disabled_plan_stays_disabled() {
        let plan = FaultPlan::disabled().for_shard(2);
        assert!(!plan.is_active());
        assert_eq!(plan.read_outcome(7, 0), ReadOutcome::clean());
    }

    #[test]
    fn byte_keys_are_stable() {
        assert_eq!(key_for_bytes(b"snapshot"), key_for_bytes(b"snapshot"));
        assert_ne!(key_for_bytes(b"a"), key_for_bytes(b"b"));
    }
}

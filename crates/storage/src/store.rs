//! The instrumented dataset store.
//!
//! [`DatasetStore`] holds the raw series of a dataset and serves reads at
//! page granularity, classifying every access as sequential or random through
//! the shared [`IoCounters`]. Indexes and scans read raw series exclusively
//! through this interface so that their access patterns are measured under
//! identical rules — the paper's "same conditions for every method" principle.

use crate::counters::{IoCounters, IoSnapshot};
use hydra_core::engine::IoSource;
use hydra_core::series::{Dataset, SeriesView};

/// Default page size: 4 KiB, a typical filesystem block.
pub const DEFAULT_PAGE_BYTES: usize = 4096;

/// A page-granular, access-counting view over a dataset.
#[derive(Clone, Debug)]
pub struct DatasetStore {
    dataset: Dataset,
    page_bytes: usize,
    series_bytes: usize,
    counters: IoCounters,
}

impl DatasetStore {
    /// Wraps `dataset` with the default 4 KiB page size.
    pub fn new(dataset: Dataset) -> Self {
        Self::with_page_bytes(dataset, DEFAULT_PAGE_BYTES)
    }

    /// Wraps `dataset` with an explicit page size in bytes.
    ///
    /// # Panics
    /// Panics if `page_bytes` is zero.
    pub fn with_page_bytes(dataset: Dataset, page_bytes: usize) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        let series_bytes = dataset.series_length() * std::mem::size_of::<f32>();
        Self {
            dataset,
            page_bytes,
            series_bytes,
            counters: IoCounters::new(),
        }
    }

    /// The number of series stored.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// The series length of the stored dataset.
    pub fn series_length(&self) -> usize {
        self.dataset.series_length()
    }

    /// The page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// The size of one series in bytes.
    pub fn series_bytes(&self) -> usize {
        self.series_bytes
    }

    /// The number of pages the dataset file occupies.
    pub fn total_pages(&self) -> u64 {
        let total_bytes = self.dataset.len() * self.series_bytes;
        (total_bytes as u64).div_ceil(self.page_bytes as u64)
    }

    /// The shared I/O counters (clone to keep a handle).
    pub fn counters(&self) -> &IoCounters {
        &self.counters
    }

    /// A snapshot of the I/O counters, aggregated over every thread.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.counters.snapshot()
    }

    /// A snapshot of the traffic recorded by the calling thread only (each
    /// thread shards its own counters — see [`IoCounters`]).
    pub fn thread_io_snapshot(&self) -> IoSnapshot {
        self.counters.thread_snapshot()
    }

    /// Resets the I/O counters of every thread (e.g. between the build phase
    /// and the query phase of an experiment).
    pub fn reset_io(&self) {
        self.counters.reset();
    }

    /// Resets the calling thread's counters only, leaving concurrent readers'
    /// shards untouched (used around each query of a parallel workload).
    pub fn reset_thread_io(&self) {
        self.counters.reset_thread();
    }

    /// Direct, *uncounted* access to the underlying dataset.
    ///
    /// Intended for index construction code that has already accounted for its
    /// build-time pass separately (e.g. via [`DatasetStore::scan_all`]) and
    /// for tests; query-time code must use the counted accessors.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The page range `[first, last]` occupied by series `id`.
    fn page_range(&self, id: usize) -> (u64, u64) {
        let start_byte = (id * self.series_bytes) as u64;
        let end_byte = start_byte + self.series_bytes as u64 - 1;
        (
            start_byte / self.page_bytes as u64,
            end_byte / self.page_bytes as u64,
        )
    }

    /// Reads a single series by id, charging the access to the counters.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn read_series(&self, id: usize) -> SeriesView<'_> {
        let (first, last) = self.page_range(id);
        self.counters
            .record_read_run(first, last - first + 1, self.series_bytes as u64);
        self.dataset.series(id)
    }

    /// Reads `count` consecutive series starting at `first_id` as one
    /// contiguous run (one potential seek, then sequential pages).
    ///
    /// Returns a slice-backed view iterator over the run.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn read_run(&self, first_id: usize, count: usize) -> Vec<SeriesView<'_>> {
        if count == 0 {
            return Vec::new();
        }
        assert!(first_id + count <= self.dataset.len(), "run out of bounds");
        let (first_page, _) = self.page_range(first_id);
        let (_, last_page) = self.page_range(first_id + count - 1);
        self.counters.record_read_run(
            first_page,
            last_page - first_page + 1,
            (count * self.series_bytes) as u64,
        );
        (first_id..first_id + count)
            .map(|i| self.dataset.series(i))
            .collect()
    }

    /// Sequentially scans the whole dataset (the UCR-Suite / sequential-scan
    /// access pattern), invoking `f` for every series in storage order.
    pub fn scan_all<F: FnMut(usize, SeriesView<'_>)>(&self, mut f: F) {
        let n = self.dataset.len();
        if n == 0 {
            return;
        }
        let (first_page, _) = self.page_range(0);
        let (_, last_page) = self.page_range(n - 1);
        self.counters.record_read_run(
            first_page,
            last_page - first_page + 1,
            (n * self.series_bytes) as u64,
        );
        for i in 0..n {
            f(i, self.dataset.series(i));
        }
    }

    /// Marks an explicit seek (used by skip-sequential algorithms between
    /// skipped regions even when the next read happens to be contiguous).
    pub fn seek(&self) {
        self.counters.record_seek();
    }

    /// Forgets the calling thread's disk-head position without touching its
    /// counters — the next read is classified random, exactly as after
    /// [`DatasetStore::reset_thread_io`].
    ///
    /// This is the batch-scoped attribution primitive: the engine resets a
    /// worker's counter shard once per *query* on the serial path, but a
    /// batch kernel answers many queries inside one engine-level reset. The
    /// kernel calls this before each query's private read phase so that the
    /// per-query `thread_io_snapshot` deltas classify sequential vs random
    /// pages exactly as a serial run would, while the shard keeps
    /// accumulating the batch's true physical totals.
    pub fn invalidate_head(&self) {
        // Same counter operation as an explicit seek; kept as a named alias
        // so the two use cases cannot drift apart if seek classification
        // ever changes.
        self.seek();
    }

    /// Records `bytes` of index payload written to this store's disk.
    pub fn record_index_write(&self, bytes: u64) {
        self.counters.record_write(bytes);
    }

    /// Records `bytes` of index payload read back from this store's disk
    /// (a snapshot load): one contiguous run — a seek plus sequential pages —
    /// on a file separate from the raw data, so the raw-file head position is
    /// invalidated.
    pub fn record_index_read(&self, bytes: u64) {
        let pages = bytes.div_ceil(self.page_bytes as u64).max(1);
        self.counters.record_detached_read(pages, bytes);
    }
}

/// The store is the I/O counter source the [`hydra_core::QueryEngine`]
/// observes around every query.
impl IoSource for DatasetStore {
    fn io_snapshot(&self) -> IoSnapshot {
        DatasetStore::io_snapshot(self)
    }

    fn reset_io(&self) {
        DatasetStore::reset_io(self)
    }

    fn thread_io_snapshot(&self) -> IoSnapshot {
        DatasetStore::thread_io_snapshot(self)
    }

    fn reset_thread_io(&self) {
        DatasetStore::reset_thread_io(self)
    }

    fn has_thread_scoped_counters(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::series::Dataset;

    fn dataset(count: usize, len: usize) -> Dataset {
        let values: Vec<f32> = (0..count * len).map(|i| i as f32).collect();
        Dataset::from_flat(values, len)
    }

    #[test]
    fn geometry_is_reported() {
        // 256-value series = 1 KiB each; 4 per 4 KiB page.
        let store = DatasetStore::new(dataset(16, 256));
        assert_eq!(store.len(), 16);
        assert!(!store.is_empty());
        assert_eq!(store.series_length(), 256);
        assert_eq!(store.series_bytes(), 1024);
        assert_eq!(store.page_bytes(), 4096);
        assert_eq!(store.total_pages(), 4);
    }

    #[test]
    fn single_reads_far_apart_are_random() {
        let store = DatasetStore::new(dataset(64, 256));
        store.read_series(0);
        store.read_series(32);
        store.read_series(5);
        let io = store.io_snapshot();
        assert_eq!(io.random_pages, 3);
        assert_eq!(io.bytes_read, 3 * 1024);
    }

    #[test]
    fn reads_within_one_page_after_each_other_are_sequential_only_if_new_page() {
        // Series 0..3 share page 0; the second read of page 0 is a "random"
        // re-access by the counting rule (it does not advance the head), which
        // matches charging a leaf access per leaf visit.
        let store = DatasetStore::new(dataset(8, 256));
        store.read_series(0);
        store.read_series(1);
        let io = store.io_snapshot();
        assert_eq!(io.total_pages(), 2);
    }

    #[test]
    fn full_scan_is_one_seek_then_sequential() {
        let store = DatasetStore::new(dataset(100, 256));
        let mut seen = 0usize;
        store.scan_all(|i, s| {
            assert_eq!(s.len(), 256);
            assert_eq!(i, seen);
            seen += 1;
        });
        assert_eq!(seen, 100);
        let io = store.io_snapshot();
        assert_eq!(io.random_pages, 1);
        assert_eq!(io.sequential_pages, store.total_pages() - 1);
        assert_eq!(io.bytes_read, 100 * 1024);
    }

    #[test]
    fn read_run_counts_one_seek() {
        let store = DatasetStore::new(dataset(100, 256));
        let run = store.read_run(40, 8);
        assert_eq!(run.len(), 8);
        assert_eq!(run[0].values()[0], 40.0 * 256.0);
        let io = store.io_snapshot();
        assert_eq!(io.random_pages, 1);
        assert_eq!(io.sequential_pages, 1); // 8 series * 1KiB = 2 pages total
        assert!(store.read_run(0, 0).is_empty());
    }

    #[test]
    fn skip_sequential_pattern_counts_one_random_access_per_skip() {
        // Mimic ADS+/VA+file: read groups of series, skipping between groups.
        let store = DatasetStore::new(dataset(400, 256));
        let mut id = 0;
        let mut skips = 0;
        while id < 400 {
            store.read_run(id, 4); // one page worth
            id += 40; // skip ahead
            skips += 1;
        }
        let io = store.io_snapshot();
        assert_eq!(io.random_pages, skips);
    }

    #[test]
    fn reset_and_seek() {
        let store = DatasetStore::new(dataset(10, 256));
        store.read_series(0);
        store.reset_io();
        assert_eq!(store.io_snapshot(), IoSnapshot::default());
        store.read_series(1);
        store.seek();
        store.read_series(2);
        assert_eq!(store.io_snapshot().random_pages, 2);
    }

    #[test]
    fn invalidate_head_classifies_like_a_fresh_reset_without_losing_counts() {
        // Two "queries" inside one batch: reading series 4 directly after
        // series 3 would normally continue the head; invalidating between
        // them reproduces the per-query-reset classification (a cold random
        // access) while the shard keeps both queries' totals.
        let store = DatasetStore::new(dataset(64, 1024)); // 1 series = 1 page
        store.read_series(3);
        let between = store.thread_io_snapshot();
        store.invalidate_head();
        store.read_series(4);
        let delta = store.thread_io_snapshot().since(&between);
        assert_eq!(delta.random_pages, 1, "post-invalidation read is random");
        assert_eq!(delta.sequential_pages, 0);
        assert_eq!(store.thread_io_snapshot().total_pages(), 2, "nothing lost");
    }

    #[test]
    fn index_writes_are_tracked() {
        let store = DatasetStore::new(dataset(10, 256));
        store.record_index_write(12345);
        assert_eq!(store.io_snapshot().bytes_written, 12345);
    }

    #[test]
    fn index_reads_are_one_seek_then_sequential_and_break_the_head() {
        let store = DatasetStore::new(dataset(10, 256));
        // 3 pages worth of snapshot: 1 random + 2 sequential.
        store.record_index_read(3 * 4096);
        let io = store.io_snapshot();
        assert_eq!(io.random_pages, 1);
        assert_eq!(io.sequential_pages, 2);
        assert_eq!(io.bytes_read, 3 * 4096);
        // A sub-page snapshot still costs one page access.
        store.record_index_read(100);
        assert_eq!(store.io_snapshot().random_pages, 2);
        // The snapshot lives in a different file: the next raw read must
        // seek even though it starts at page 0.
        store.read_series(0);
        assert_eq!(store.io_snapshot().random_pages, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_run_bounds_checked() {
        let store = DatasetStore::new(dataset(10, 256));
        let _ = store.read_run(8, 5);
    }
}

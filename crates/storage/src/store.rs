//! The instrumented dataset store.
//!
//! [`DatasetStore`] holds the raw series of a dataset and serves reads at
//! page granularity, classifying every access as sequential or random through
//! the shared [`IoCounters`]. Indexes and scans read raw series exclusively
//! through this interface so that their access patterns are measured under
//! identical rules — the paper's "same conditions for every method" principle.

use crate::counters::{IoCounters, IoSnapshot};
use crate::fault::{self, FaultPlan};
use hydra_core::engine::IoSource;
use hydra_core::series::{Dataset, SeriesView};
use hydra_core::{Error, Result};
use std::ops::ControlFlow;

/// Default page size: 4 KiB, a typical filesystem block.
pub const DEFAULT_PAGE_BYTES: usize = 4096;

/// A page-granular, access-counting view over a dataset.
#[derive(Clone, Debug)]
pub struct DatasetStore {
    dataset: Dataset,
    page_bytes: usize,
    series_bytes: usize,
    counters: IoCounters,
    fault: FaultPlan,
}

impl DatasetStore {
    /// Wraps `dataset` with the default 4 KiB page size.
    pub fn new(dataset: Dataset) -> Self {
        Self::with_page_bytes(dataset, DEFAULT_PAGE_BYTES)
    }

    /// Wraps `dataset` with an explicit page size in bytes.
    ///
    /// # Panics
    /// Panics if `page_bytes` is zero.
    pub fn with_page_bytes(dataset: Dataset, page_bytes: usize) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        let series_bytes = dataset.series_length() * std::mem::size_of::<f32>();
        Self {
            dataset,
            page_bytes,
            series_bytes,
            counters: IoCounters::new(),
            fault: FaultPlan::disabled(),
        }
    }

    /// Attaches a [`FaultPlan`] to the fallible read paths
    /// ([`DatasetStore::try_read_series`], [`DatasetStore::try_read_run`],
    /// [`DatasetStore::try_scan_all`], [`DatasetStore::try_access`]) and the
    /// snapshot save path. The disabled plan (the default) makes every
    /// fallible path behave — and count — exactly like its infallible twin.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// The attached fault plan ([`FaultPlan::disabled`] unless overridden).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// The number of series stored.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// The series length of the stored dataset.
    pub fn series_length(&self) -> usize {
        self.dataset.series_length()
    }

    /// The page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// The size of one series in bytes.
    pub fn series_bytes(&self) -> usize {
        self.series_bytes
    }

    /// The number of pages the dataset file occupies.
    pub fn total_pages(&self) -> u64 {
        let total_bytes = self.dataset.len() * self.series_bytes;
        (total_bytes as u64).div_ceil(self.page_bytes as u64)
    }

    /// The shared I/O counters (clone to keep a handle).
    pub fn counters(&self) -> &IoCounters {
        &self.counters
    }

    /// A snapshot of the I/O counters, aggregated over every thread.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.counters.snapshot()
    }

    /// A snapshot of the traffic recorded by the calling thread only (each
    /// thread shards its own counters — see [`IoCounters`]).
    pub fn thread_io_snapshot(&self) -> IoSnapshot {
        self.counters.thread_snapshot()
    }

    /// Resets the I/O counters of every thread (e.g. between the build phase
    /// and the query phase of an experiment).
    pub fn reset_io(&self) {
        self.counters.reset();
    }

    /// Resets the calling thread's counters only, leaving concurrent readers'
    /// shards untouched (used around each query of a parallel workload).
    pub fn reset_thread_io(&self) {
        self.counters.reset_thread();
    }

    /// Direct, *uncounted* access to the underlying dataset.
    ///
    /// Intended for index construction code that has already accounted for its
    /// build-time pass separately (e.g. via [`DatasetStore::scan_all`]) and
    /// for tests; query-time code must use the counted accessors.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The page range `[first, last]` occupied by series `id`.
    fn page_range(&self, id: usize) -> (u64, u64) {
        let start_byte = (id * self.series_bytes) as u64;
        let end_byte = start_byte + self.series_bytes as u64 - 1;
        (
            start_byte / self.page_bytes as u64,
            end_byte / self.page_bytes as u64,
        )
    }

    /// Reads a single series by id, charging the access to the counters.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn read_series(&self, id: usize) -> SeriesView<'_> {
        let (first, last) = self.page_range(id);
        self.counters
            .record_read_run(first, last - first + 1, self.series_bytes as u64);
        self.dataset.series(id)
    }

    /// Reads `count` consecutive series starting at `first_id` as one
    /// contiguous run (one potential seek, then sequential pages).
    ///
    /// Returns a slice-backed view iterator over the run.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn read_run(&self, first_id: usize, count: usize) -> Vec<SeriesView<'_>> {
        if count == 0 {
            return Vec::new();
        }
        assert!(first_id + count <= self.dataset.len(), "run out of bounds");
        let (first_page, _) = self.page_range(first_id);
        let (_, last_page) = self.page_range(first_id + count - 1);
        self.counters.record_read_run(
            first_page,
            last_page - first_page + 1,
            (count * self.series_bytes) as u64,
        );
        (first_id..first_id + count)
            .map(|i| self.dataset.series(i))
            .collect()
    }

    /// Sequentially scans the whole dataset (the UCR-Suite / sequential-scan
    /// access pattern), invoking `f` for every series in storage order.
    pub fn scan_all<F: FnMut(usize, SeriesView<'_>)>(&self, mut f: F) {
        let n = self.dataset.len();
        if n == 0 {
            return;
        }
        let (first_page, _) = self.page_range(0);
        let (_, last_page) = self.page_range(n - 1);
        self.counters.record_read_run(
            first_page,
            last_page - first_page + 1,
            (n * self.series_bytes) as u64,
        );
        for i in 0..n {
            f(i, self.dataset.series(i));
        }
    }

    /// Consults the fault plan for the access keyed `key` on the calling
    /// thread's current retry attempt: charges any latency surcharge to the
    /// counters and surfaces injected failures as retriable
    /// [`Error::Io`] values.
    fn fault_check(&self, key: u64) -> Result<()> {
        if !self.fault.is_active() {
            return Ok(());
        }
        let outcome = self.fault.read_outcome(key, fault::current_attempt());
        self.counters.record_surcharge(outcome.surcharge_pages);
        if let Some(err) = outcome.error {
            return Err(Error::retriable_io(err.to_io_error()));
        }
        Ok(())
    }

    /// Fallible twin of [`DatasetStore::read_series`]: an out-of-bounds id is
    /// a typed [`Error::NotFound`] instead of a panic, and the fault plan may
    /// inject retriable read failures. Under the disabled plan the charged
    /// I/O is identical to `read_series`.
    pub fn try_read_series(&self, id: usize) -> Result<SeriesView<'_>> {
        if id >= self.dataset.len() {
            return Err(Error::NotFound(format!("series {id}")));
        }
        self.fault_check(id as u64)?;
        Ok(self.read_series(id))
    }

    /// Fallible twin of [`DatasetStore::read_run`]: bounds violations are
    /// typed [`Error::NotFound`] errors, and the fault plan (keyed on the
    /// run's first id) may inject retriable failures. Under the disabled
    /// plan the charged I/O is identical to `read_run`.
    pub fn try_read_run(&self, first_id: usize, count: usize) -> Result<Vec<SeriesView<'_>>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if first_id + count > self.dataset.len() {
            return Err(Error::NotFound(format!(
                "series run {first_id}..{}",
                first_id + count
            )));
        }
        self.fault_check(first_id as u64)?;
        Ok(self.read_run(first_id, count))
    }

    /// Fallible, interruptible twin of [`DatasetStore::scan_all`].
    ///
    /// `f` may stop the scan early (`ControlFlow::Break`, e.g. on budget
    /// exhaustion) or fail; the fault plan is consulted per series. Returns
    /// `Ok(true)` when the scan reached the end, `Ok(false)` when `f` broke
    /// out early.
    ///
    /// Pages are charged *incrementally* — each series charges only the pages
    /// past the furthest page already charged by this scan, and fully
    /// overlapped series charge bytes only — so a complete pass records
    /// exactly what `scan_all` records (one potential seek, then sequential
    /// pages, all bytes), and a truncated pass charges only what it read.
    pub fn try_scan_all<F>(&self, mut f: F) -> Result<bool>
    where
        F: FnMut(usize, SeriesView<'_>) -> Result<ControlFlow<()>>,
    {
        let n = self.dataset.len();
        if n == 0 {
            return Ok(true);
        }
        let (mut next_page, _) = self.page_range(0);
        for i in 0..n {
            self.fault_check(i as u64)?;
            let (first, last) = self.page_range(i);
            if last >= next_page {
                let from = next_page.max(first);
                self.counters
                    .record_read_run(from, last - from + 1, self.series_bytes as u64);
                next_page = last + 1;
            } else {
                self.counters.record_read_bytes(self.series_bytes as u64);
            }
            if let ControlFlow::Break(()) = f(i, self.dataset.series(i))? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// A fault checkpoint for access paths that do their own I/O accounting
    /// (index leaf scans charge pages through their `QueryStats`): consults
    /// the plan's error faults for `key` without touching the counters.
    pub fn try_access(&self, key: u64) -> Result<()> {
        if !self.fault.is_active() {
            return Ok(());
        }
        let outcome = self.fault.read_outcome(key, fault::current_attempt());
        if let Some(err) = outcome.error {
            return Err(Error::retriable_io(err.to_io_error()));
        }
        Ok(())
    }

    /// Marks an explicit seek (used by skip-sequential algorithms between
    /// skipped regions even when the next read happens to be contiguous).
    pub fn seek(&self) {
        self.counters.record_seek();
    }

    /// Forgets the calling thread's disk-head position without touching its
    /// counters — the next read is classified random, exactly as after
    /// [`DatasetStore::reset_thread_io`].
    ///
    /// This is the batch-scoped attribution primitive: the engine resets a
    /// worker's counter shard once per *query* on the serial path, but a
    /// batch kernel answers many queries inside one engine-level reset. The
    /// kernel calls this before each query's private read phase so that the
    /// per-query `thread_io_snapshot` deltas classify sequential vs random
    /// pages exactly as a serial run would, while the shard keeps
    /// accumulating the batch's true physical totals.
    pub fn invalidate_head(&self) {
        // Same counter operation as an explicit seek; kept as a named alias
        // so the two use cases cannot drift apart if seek classification
        // ever changes.
        self.seek();
    }

    /// Records `bytes` of index payload written to this store's disk.
    pub fn record_index_write(&self, bytes: u64) {
        self.counters.record_write(bytes);
    }

    /// Records `bytes` of index payload read back from this store's disk
    /// (a snapshot load): one contiguous run — a seek plus sequential pages —
    /// on a file separate from the raw data, so the raw-file head position is
    /// invalidated.
    pub fn record_index_read(&self, bytes: u64) {
        let pages = bytes.div_ceil(self.page_bytes as u64).max(1);
        self.counters.record_detached_read(pages, bytes);
    }
}

/// The store is the I/O counter source the [`hydra_core::QueryEngine`]
/// observes around every query.
impl IoSource for DatasetStore {
    fn io_snapshot(&self) -> IoSnapshot {
        DatasetStore::io_snapshot(self)
    }

    fn reset_io(&self) {
        DatasetStore::reset_io(self)
    }

    fn thread_io_snapshot(&self) -> IoSnapshot {
        DatasetStore::thread_io_snapshot(self)
    }

    fn reset_thread_io(&self) {
        DatasetStore::reset_thread_io(self)
    }

    fn has_thread_scoped_counters(&self) -> bool {
        true
    }

    fn begin_attempt(&self, attempt: u32) {
        fault::set_attempt(attempt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::series::Dataset;

    fn dataset(count: usize, len: usize) -> Dataset {
        let values: Vec<f32> = (0..count * len).map(|i| i as f32).collect();
        Dataset::from_flat(values, len)
    }

    #[test]
    fn geometry_is_reported() {
        // 256-value series = 1 KiB each; 4 per 4 KiB page.
        let store = DatasetStore::new(dataset(16, 256));
        assert_eq!(store.len(), 16);
        assert!(!store.is_empty());
        assert_eq!(store.series_length(), 256);
        assert_eq!(store.series_bytes(), 1024);
        assert_eq!(store.page_bytes(), 4096);
        assert_eq!(store.total_pages(), 4);
    }

    #[test]
    fn single_reads_far_apart_are_random() {
        let store = DatasetStore::new(dataset(64, 256));
        store.read_series(0);
        store.read_series(32);
        store.read_series(5);
        let io = store.io_snapshot();
        assert_eq!(io.random_pages, 3);
        assert_eq!(io.bytes_read, 3 * 1024);
    }

    #[test]
    fn reads_within_one_page_after_each_other_are_sequential_only_if_new_page() {
        // Series 0..3 share page 0; the second read of page 0 is a "random"
        // re-access by the counting rule (it does not advance the head), which
        // matches charging a leaf access per leaf visit.
        let store = DatasetStore::new(dataset(8, 256));
        store.read_series(0);
        store.read_series(1);
        let io = store.io_snapshot();
        assert_eq!(io.total_pages(), 2);
    }

    #[test]
    fn full_scan_is_one_seek_then_sequential() {
        let store = DatasetStore::new(dataset(100, 256));
        let mut seen = 0usize;
        store.scan_all(|i, s| {
            assert_eq!(s.len(), 256);
            assert_eq!(i, seen);
            seen += 1;
        });
        assert_eq!(seen, 100);
        let io = store.io_snapshot();
        assert_eq!(io.random_pages, 1);
        assert_eq!(io.sequential_pages, store.total_pages() - 1);
        assert_eq!(io.bytes_read, 100 * 1024);
    }

    #[test]
    fn read_run_counts_one_seek() {
        let store = DatasetStore::new(dataset(100, 256));
        let run = store.read_run(40, 8);
        assert_eq!(run.len(), 8);
        assert_eq!(run[0].values()[0], 40.0 * 256.0);
        let io = store.io_snapshot();
        assert_eq!(io.random_pages, 1);
        assert_eq!(io.sequential_pages, 1); // 8 series * 1KiB = 2 pages total
        assert!(store.read_run(0, 0).is_empty());
    }

    #[test]
    fn skip_sequential_pattern_counts_one_random_access_per_skip() {
        // Mimic ADS+/VA+file: read groups of series, skipping between groups.
        let store = DatasetStore::new(dataset(400, 256));
        let mut id = 0;
        let mut skips = 0;
        while id < 400 {
            store.read_run(id, 4); // one page worth
            id += 40; // skip ahead
            skips += 1;
        }
        let io = store.io_snapshot();
        assert_eq!(io.random_pages, skips);
    }

    #[test]
    fn reset_and_seek() {
        let store = DatasetStore::new(dataset(10, 256));
        store.read_series(0);
        store.reset_io();
        assert_eq!(store.io_snapshot(), IoSnapshot::default());
        store.read_series(1);
        store.seek();
        store.read_series(2);
        assert_eq!(store.io_snapshot().random_pages, 2);
    }

    #[test]
    fn invalidate_head_classifies_like_a_fresh_reset_without_losing_counts() {
        // Two "queries" inside one batch: reading series 4 directly after
        // series 3 would normally continue the head; invalidating between
        // them reproduces the per-query-reset classification (a cold random
        // access) while the shard keeps both queries' totals.
        let store = DatasetStore::new(dataset(64, 1024)); // 1 series = 1 page
        store.read_series(3);
        let between = store.thread_io_snapshot();
        store.invalidate_head();
        store.read_series(4);
        let delta = store.thread_io_snapshot().since(&between);
        assert_eq!(delta.random_pages, 1, "post-invalidation read is random");
        assert_eq!(delta.sequential_pages, 0);
        assert_eq!(store.thread_io_snapshot().total_pages(), 2, "nothing lost");
    }

    #[test]
    fn index_writes_are_tracked() {
        let store = DatasetStore::new(dataset(10, 256));
        store.record_index_write(12345);
        assert_eq!(store.io_snapshot().bytes_written, 12345);
    }

    #[test]
    fn index_reads_are_one_seek_then_sequential_and_break_the_head() {
        let store = DatasetStore::new(dataset(10, 256));
        // 3 pages worth of snapshot: 1 random + 2 sequential.
        store.record_index_read(3 * 4096);
        let io = store.io_snapshot();
        assert_eq!(io.random_pages, 1);
        assert_eq!(io.sequential_pages, 2);
        assert_eq!(io.bytes_read, 3 * 4096);
        // A sub-page snapshot still costs one page access.
        store.record_index_read(100);
        assert_eq!(store.io_snapshot().random_pages, 2);
        // The snapshot lives in a different file: the next raw read must
        // seek even though it starts at page 0.
        store.read_series(0);
        assert_eq!(store.io_snapshot().random_pages, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_run_bounds_checked() {
        let store = DatasetStore::new(dataset(10, 256));
        let _ = store.read_run(8, 5);
    }

    #[test]
    fn try_variants_count_exactly_like_their_infallible_twins() {
        let a = DatasetStore::new(dataset(100, 256));
        let b = DatasetStore::new(dataset(100, 256));
        a.read_series(7);
        b.try_read_series(7).unwrap();
        a.read_run(40, 8);
        b.try_read_run(40, 8).unwrap();
        assert_eq!(a.io_snapshot(), b.io_snapshot());
        a.reset_io();
        b.reset_io();
        a.scan_all(|_, _| {});
        let complete = b
            .try_scan_all(|_, _| Ok(std::ops::ControlFlow::Continue(())))
            .unwrap();
        assert!(complete);
        assert_eq!(a.io_snapshot(), b.io_snapshot());
    }

    #[test]
    fn try_variants_return_typed_errors_out_of_bounds() {
        let store = DatasetStore::new(dataset(10, 256));
        assert!(matches!(
            store.try_read_series(10),
            Err(hydra_core::Error::NotFound(_))
        ));
        assert!(matches!(
            store.try_read_run(8, 5),
            Err(hydra_core::Error::NotFound(_))
        ));
        assert!(store.try_read_run(8, 0).unwrap().is_empty());
    }

    #[test]
    fn truncated_scan_charges_only_what_it_read() {
        let store = DatasetStore::new(dataset(100, 256)); // 4 series per page
        let complete = store
            .try_scan_all(|i, _| {
                Ok(if i == 7 {
                    std::ops::ControlFlow::Break(())
                } else {
                    std::ops::ControlFlow::Continue(())
                })
            })
            .unwrap();
        assert!(!complete);
        let io = store.io_snapshot();
        // Series 0..=7 live in pages 0 and 1.
        assert_eq!(io.total_pages(), 2);
        assert_eq!(io.bytes_read, 8 * 1024);
    }

    #[test]
    fn fault_plan_injects_deterministic_retriable_errors() {
        let config = crate::fault::FaultConfig {
            read_error: 1.0,
            max_transient_attempts: 1,
            ..Default::default()
        };
        let store =
            DatasetStore::new(dataset(10, 256)).with_fault_plan(FaultPlan::seeded(3, config));
        let err = store.try_read_series(0).unwrap_err();
        assert!(err.is_retriable());
        assert!(store.try_access(0).is_err());
        // The planned failure count is 1: the first retry succeeds.
        fault::set_attempt(1);
        assert!(store.try_read_series(0).is_ok());
        assert!(store.try_access(0).is_ok());
        fault::set_attempt(0);
        // Infallible paths stay fault-free by design.
        store.read_series(0);
    }

    #[test]
    fn latency_surcharge_is_charged_to_the_counters() {
        let config = crate::fault::FaultConfig {
            latency: 1.0,
            latency_pages: 3,
            ..Default::default()
        };
        let store =
            DatasetStore::new(dataset(10, 256)).with_fault_plan(FaultPlan::seeded(3, config));
        store.reset_io();
        store.try_read_series(0).unwrap();
        let io = store.io_snapshot();
        // 1 page for the read + 3 surcharge pages.
        assert_eq!(io.random_pages, 4);
    }
}

//! Storage cost models: converting counted I/O into modelled I/O time.
//!
//! The paper runs every experiment on two servers — an HDD machine (6-disk
//! RAID0, very high sequential throughput of ~1290 MB/s but millisecond-class
//! seeks) and an SSD machine (lower sequential throughput of ~330 MB/s, but
//! near-free random access). The *relative* performance of the methods flips
//! between the two (ADS+/VA+file win on SSD, DSTree on large HDD datasets)
//! because their access patterns differ.
//!
//! [`CostModel`] captures exactly those two knobs — seek latency and
//! sequential throughput — and turns an [`IoSnapshot`] into a modelled I/O
//! duration. The harness reports both raw counters and modelled time, so the
//! figure shapes can be checked independently of the constants chosen here.

use crate::counters::IoSnapshot;
use std::time::Duration;

/// Named storage profiles mirroring the paper's two machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StorageProfile {
    /// RAID0 of spinning disks: fast sequential, expensive seeks.
    Hdd,
    /// SATA SSD RAID0: cheaper seeks, lower sequential throughput.
    Ssd,
    /// Everything already in memory: only a small per-page software overhead.
    InMemory,
}

/// A storage cost model: seek latency plus sequential transfer throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cost charged per random page access (head seek / command overhead).
    pub seek_latency: Duration,
    /// Sequential transfer throughput in bytes per second.
    pub sequential_bytes_per_sec: f64,
    /// The profile this model was derived from.
    pub profile: StorageProfile,
}

impl CostModel {
    /// The HDD profile: ~1290 MB/s sequential (the paper's RAID0 array) and a
    /// 5 ms average seek.
    pub fn hdd() -> Self {
        Self {
            seek_latency: Duration::from_micros(5000),
            sequential_bytes_per_sec: 1290.0 * 1024.0 * 1024.0,
            profile: StorageProfile::Hdd,
        }
    }

    /// The SSD profile: ~330 MB/s sequential (the paper's SATA2 SSD array) and
    /// a 60 µs random access.
    pub fn ssd() -> Self {
        Self {
            seek_latency: Duration::from_micros(60),
            sequential_bytes_per_sec: 330.0 * 1024.0 * 1024.0,
            profile: StorageProfile::Ssd,
        }
    }

    /// An in-memory profile: no seeks, 10 GB/s effective bandwidth.
    pub fn in_memory() -> Self {
        Self {
            seek_latency: Duration::ZERO,
            sequential_bytes_per_sec: 10.0 * 1024.0 * 1024.0 * 1024.0,
            profile: StorageProfile::InMemory,
        }
    }

    /// Builds the model for a named profile.
    pub fn for_profile(profile: StorageProfile) -> Self {
        match profile {
            StorageProfile::Hdd => Self::hdd(),
            StorageProfile::Ssd => Self::ssd(),
            StorageProfile::InMemory => Self::in_memory(),
        }
    }

    /// The modelled I/O time for a set of counted accesses:
    /// `random_pages * seek_latency + bytes_read / throughput`.
    pub fn io_time(&self, io: &IoSnapshot) -> Duration {
        let seek = self.seek_latency.mul_f64(io.random_pages as f64);
        let transfer =
            Duration::from_secs_f64(io.bytes_read as f64 / self.sequential_bytes_per_sec);
        seek + transfer
    }

    /// The modelled time for writing `bytes_written` sequentially (index
    /// construction output).
    pub fn write_time(&self, io: &IoSnapshot) -> Duration {
        Duration::from_secs_f64(io.bytes_written as f64 / self.sequential_bytes_per_sec)
    }

    /// Total modelled storage time (reads + writes).
    pub fn total_time(&self, io: &IoSnapshot) -> Duration {
        self.io_time(io) + self.write_time(io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(seq: u64, rand: u64, bytes: u64) -> IoSnapshot {
        IoSnapshot {
            sequential_pages: seq,
            random_pages: rand,
            bytes_read: bytes,
            bytes_written: 0,
        }
    }

    #[test]
    fn named_profiles_have_expected_ordering() {
        let hdd = CostModel::hdd();
        let ssd = CostModel::ssd();
        assert!(hdd.seek_latency > ssd.seek_latency, "HDD seeks cost more");
        assert!(
            hdd.sequential_bytes_per_sec > ssd.sequential_bytes_per_sec,
            "the paper's HDD RAID0 outruns its SSD array sequentially"
        );
        assert_eq!(CostModel::for_profile(StorageProfile::Hdd), hdd);
        assert_eq!(CostModel::for_profile(StorageProfile::Ssd), ssd);
        assert_eq!(
            CostModel::for_profile(StorageProfile::InMemory),
            CostModel::in_memory()
        );
    }

    #[test]
    fn sequential_scan_favours_hdd_random_workload_favours_ssd() {
        // 1 GB fully sequential read.
        let scan = snapshot(262_144, 1, 1 << 30);
        // 100k random 4 KiB reads (≈0.4 GB).
        let random = snapshot(0, 100_000, 100_000 * 4096);
        let hdd = CostModel::hdd();
        let ssd = CostModel::ssd();
        assert!(
            hdd.io_time(&scan) < ssd.io_time(&scan),
            "HDD RAID0 wins pure scans"
        );
        assert!(
            ssd.io_time(&random) < hdd.io_time(&random),
            "SSD wins random access"
        );
    }

    #[test]
    fn io_time_scales_linearly_with_seeks_and_bytes() {
        let m = CostModel::hdd();
        let one = m.io_time(&snapshot(0, 1, 0));
        let ten = m.io_time(&snapshot(0, 10, 0));
        assert!((ten.as_secs_f64() - 10.0 * one.as_secs_f64()).abs() < 1e-9);
        let b1 = m.io_time(&snapshot(0, 0, 1 << 20));
        let b4 = m.io_time(&snapshot(0, 0, 4 << 20));
        assert!((b4.as_secs_f64() - 4.0 * b1.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn in_memory_profile_has_no_seek_cost() {
        let m = CostModel::in_memory();
        assert_eq!(m.io_time(&snapshot(0, 1_000_000, 0)), Duration::ZERO);
    }

    #[test]
    fn write_time_uses_sequential_throughput() {
        let m = CostModel::ssd();
        let io = IoSnapshot {
            bytes_written: (330.0 * 1024.0 * 1024.0) as u64,
            ..Default::default()
        };
        let t = m.write_time(&io);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(m.total_time(&io), m.io_time(&io) + t);
    }
}

//! # hydra-storage
//!
//! The instrumented storage substrate that every method in the suite reads
//! raw series through.
//!
//! The paper's headline results (Figures 3–7) are driven by each method's
//! *disk access pattern*: how many sequential page reads and how many random
//! seeks it incurs. Reproducing them on laptop-scale data therefore requires
//! an explicit accounting layer:
//!
//! * [`DatasetStore`] wraps a dataset in a page-granular store that classifies
//!   every read as sequential (next page after the previous read) or random
//!   (anything else), mirroring the paper's definition of "one random disk
//!   access per leaf / per skip".
//! * [`IoCounters`] accumulates the counts; they feed both the disk-access
//!   figures (Figure 4) and the time model.
//! * [`CostModel`] converts counted I/O into modelled I/O time for an HDD
//!   profile (fast sequential throughput, expensive seeks — the paper's RAID0
//!   server) and an SSD profile (cheap seeks, lower sequential throughput),
//!   which is what produces the HDD/SSD winner reversal of Figures 6–7.
//! * [`BufferPool`] provides a simple build-time buffer manager with a byte
//!   budget, mimicking the buffering knobs the paper tunes.
//! * [`snapshot`] persists built indexes to disk as versioned, checksummed
//!   files keyed on a dataset + build-options fingerprint, with save and
//!   load charged through the same counters — measured snapshot I/O instead
//!   of modelled index I/O.
//! * [`fault`] injects deterministic, seeded storage faults (transient read
//!   errors, page bit-flips, latency surcharges in cost-model units, snapshot
//!   corruption) beneath the same counters, powering the chaos tests and the
//!   robustness experiments.
//! * [`partition`] splits a dataset into deterministic contiguous shard
//!   partitions, each wrapped in its own store by the serving layer's
//!   scatter-gather front-end.

pub mod buffer;
pub mod cost;
pub mod counters;
pub mod fault;
pub mod partition;
pub mod snapshot;
pub mod store;

pub use buffer::BufferPool;
pub use cost::{CostModel, StorageProfile};
pub use counters::{IoCounters, IoSnapshot};
pub use fault::{FaultConfig, FaultPlan};
pub use partition::{partition_dataset, DatasetPartition};
pub use snapshot::{load_index, save_index, snapshot_file_name, SnapshotReader, SnapshotWriter};
pub use store::DatasetStore;

//! A simple byte-budgeted buffer pool used during index construction.
//!
//! Several of the paper's methods buffer raw series or leaf payloads in memory
//! while building and spill to disk when the buffer fills (the paper tunes the
//! buffer size from 5 GB to 60 GB and finds most methods benefit from larger
//! buffers). [`BufferPool`] models that behaviour: callers append items with a
//! byte cost; when the budget is exceeded the pool reports a *spill*, which
//! the caller converts into write traffic on its [`crate::DatasetStore`].

use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    used_bytes: usize,
    spills: u64,
    spilled_bytes: u64,
}

/// A shared byte-budgeted buffer.
#[derive(Clone, Debug)]
pub struct BufferPool {
    budget_bytes: usize,
    inner: Arc<Mutex<Inner>>,
}

impl BufferPool {
    /// Creates a pool with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The bytes currently buffered.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }

    /// The number of spills triggered so far.
    pub fn spills(&self) -> u64 {
        self.inner.lock().spills
    }

    /// Total bytes flushed out by spills.
    pub fn spilled_bytes(&self) -> u64 {
        self.inner.lock().spilled_bytes
    }

    /// Reserves `bytes` in the buffer. Returns `true` if the reservation
    /// triggered a spill (the buffer was flushed before the reservation).
    pub fn reserve(&self, bytes: usize) -> bool {
        let mut inner = self.inner.lock();
        let mut spilled = false;
        if inner.used_bytes + bytes > self.budget_bytes && inner.used_bytes > 0 {
            inner.spills += 1;
            inner.spilled_bytes += inner.used_bytes as u64;
            inner.used_bytes = 0;
            spilled = true;
        }
        inner.used_bytes += bytes;
        spilled
    }

    /// Flushes whatever is buffered, returning the number of bytes flushed.
    pub fn flush(&self) -> u64 {
        let mut inner = self.inner.lock();
        let flushed = inner.used_bytes as u64;
        if flushed > 0 {
            inner.spills += 1;
            inner.spilled_bytes += flushed;
            inner.used_bytes = 0;
        }
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_accumulate_until_budget() {
        let pool = BufferPool::new(1000);
        assert_eq!(pool.budget_bytes(), 1000);
        assert!(!pool.reserve(400));
        assert!(!pool.reserve(400));
        assert_eq!(pool.used_bytes(), 800);
        // This one exceeds the budget: spill happens first.
        assert!(pool.reserve(400));
        assert_eq!(pool.used_bytes(), 400);
        assert_eq!(pool.spills(), 1);
        assert_eq!(pool.spilled_bytes(), 800);
    }

    #[test]
    fn oversized_single_reservation_is_allowed_when_empty() {
        let pool = BufferPool::new(100);
        assert!(
            !pool.reserve(500),
            "an empty buffer accepts an oversized item without spilling"
        );
        assert_eq!(pool.used_bytes(), 500);
    }

    #[test]
    fn flush_empties_the_pool() {
        let pool = BufferPool::new(1000);
        pool.reserve(300);
        assert_eq!(pool.flush(), 300);
        assert_eq!(pool.used_bytes(), 0);
        assert_eq!(pool.flush(), 0, "flushing an empty pool is a no-op");
        assert_eq!(pool.spills(), 1);
    }

    #[test]
    fn clones_share_state() {
        let pool = BufferPool::new(100);
        let p2 = pool.clone();
        pool.reserve(60);
        assert_eq!(p2.used_bytes(), 60);
    }
}

//! Deterministic contiguous partitioning of a dataset across shards.
//!
//! The serving layer splits one dataset over N engine shards, each owning a
//! contiguous run of series with its own instrumented [`DatasetStore`]. The
//! split must be a *function of (dataset length, shard count)* alone — the
//! same rule on every node, every run — so that per-shard snapshots stay
//! valid across restarts and a scatter-gather merge can map a shard-local
//! answer id back to its global id by adding the shard's range start.
//!
//! The rule is [`hydra_core::parallel::split_ranges`]: near-equal contiguous
//! ranges, the first `len % shards` ranges one longer. Reusing the
//! intra-query work-splitting rule means partition boundaries are already
//! covered by its determinism tests.

use hydra_core::parallel::split_ranges;
use hydra_core::{Dataset, Error, Result};
use std::ops::Range;

/// One shard's slice of a dataset: its global id range and the owned
/// sub-dataset re-based to local ids `0..range.len()`.
#[derive(Clone, Debug)]
pub struct DatasetPartition {
    /// The global series ids this shard owns (`start..end` into the parent).
    pub range: Range<usize>,
    /// The shard's own dataset: series `range.start..range.end` of the
    /// parent, re-indexed from 0.
    pub dataset: Dataset,
}

/// Splits a dataset into `shards` contiguous partitions.
///
/// Deterministic in (dataset length, shard count); `shards` is clamped to
/// `1..=len`, so every partition is non-empty (a method built over an empty
/// dataset is a typed error everywhere in the suite). The concatenation of
/// the partitions, in order, is exactly the parent dataset.
pub fn partition_dataset(dataset: &Dataset, shards: usize) -> Result<Vec<DatasetPartition>> {
    if dataset.is_empty() {
        return Err(Error::EmptyDataset);
    }
    if shards == 0 {
        return Err(Error::invalid_parameter("shards", "must be at least 1"));
    }
    let series_length = dataset.series_length();
    let flat = dataset.flat_values();
    Ok(split_ranges(dataset.len(), shards)
        .into_iter()
        .map(|range| {
            let values = flat[range.start * series_length..range.end * series_length].to_vec();
            DatasetPartition {
                dataset: Dataset::from_flat(values, series_length),
                range,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(len: usize) -> Dataset {
        let values: Vec<f32> = (0..len * 4).map(|v| v as f32).collect();
        Dataset::from_flat(values, 4)
    }

    #[test]
    fn partitions_are_contiguous_and_cover_the_dataset() {
        let data = dataset(10);
        for shards in [1, 2, 3, 4, 10] {
            let parts = partition_dataset(&data, shards).unwrap();
            assert_eq!(parts.len(), shards);
            let mut next = 0usize;
            for part in &parts {
                assert_eq!(part.range.start, next, "contiguous, in order");
                assert_eq!(part.dataset.len(), part.range.len());
                assert!(!part.dataset.is_empty());
                for local in 0..part.dataset.len() {
                    assert_eq!(
                        part.dataset.series(local).values(),
                        data.series(part.range.start + local).values(),
                        "local id + range start recovers the global series"
                    );
                }
                next = part.range.end;
            }
            assert_eq!(next, data.len(), "the ranges cover every series");
        }
    }

    #[test]
    fn partitioning_is_deterministic() {
        let data = dataset(7);
        let a = partition_dataset(&data, 3).unwrap();
        let b = partition_dataset(&data, 3).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.range, y.range);
            assert_eq!(x.dataset.flat_values(), y.dataset.flat_values());
        }
        // Near-equal: first len % shards ranges are one longer.
        assert_eq!(a[0].range, 0..3);
        assert_eq!(a[1].range, 3..5);
        assert_eq!(a[2].range, 5..7);
    }

    #[test]
    fn more_shards_than_series_clamps_to_len() {
        let data = dataset(3);
        let parts = partition_dataset(&data, 8).unwrap();
        assert_eq!(parts.len(), 3, "clamped so no shard is empty");
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        let data = dataset(3);
        assert!(matches!(
            partition_dataset(&data, 0),
            Err(Error::InvalidParameter { .. })
        ));
        let empty = Dataset::from_flat(Vec::new(), 4);
        assert!(matches!(
            partition_dataset(&empty, 2),
            Err(Error::EmptyDataset)
        ));
    }
}

//! The on-disk snapshot container: versioned, checksummed, fingerprinted.
//!
//! A snapshot file materializes one built index so later sessions reload it
//! instead of rebuilding — the paper's "pay the build cost once, amortize it
//! over query workloads" assumption made real. The container wraps the
//! method-specific payload (serialized through the [`hydra_core::persist`]
//! traits) in an envelope that makes every failure mode a *typed error*:
//!
//! ```text
//! magic        8  b"HYSNAPv1"
//! version      u16 (little-endian)        CONTAINER_VERSION
//! kind         u16 length + UTF-8 bytes   PersistentIndex::snapshot_kind()
//! dataset_fp   u64                        fingerprint of the raw dataset
//! options_fp   u64                        fingerprint of the BuildOptions
//! payload_len  u64
//! payload      payload_len bytes          method-specific structure
//! checksum     u64                        FNV-1a over everything above
//! ```
//!
//! Save and load go through **real `std::fs` file I/O**, and both directions
//! are charged to the instrumented store ([`DatasetStore::record_index_write`]
//! on save, [`DatasetStore::record_index_read`] on load), so measured
//! snapshot traffic replaces part of the modelled index I/O in every
//! experiment that runs with an index directory.

use crate::store::DatasetStore;
use hydra_core::hash::Fnv1a;
use hydra_core::persist::{PersistentIndex, SliceSource, SnapshotSink, SnapshotSource};
use hydra_core::{BuildOptions, Dataset, Error, Result};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: [u8; 8] = *b"HYSNAPv1";

/// The container format version. Bump when the envelope layout changes;
/// payload evolution is the method's business (via its `snapshot_kind`).
pub const CONTAINER_VERSION: u16 = 1;

/// Fingerprint of a dataset: series count, series length, and every value's
/// bit pattern. Two datasets fingerprint equal iff they are bit-identical,
/// which is exactly the condition under which a snapshot built over one is
/// valid for the other.
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(dataset.len() as u64);
    h.write_u64(dataset.series_length() as u64);
    for &v in dataset.flat_values() {
        h.write_bytes(&v.to_bits().to_le_bytes());
    }
    h.finish()
}

/// Fingerprint of the build options that shape an index.
///
/// `build_threads` is deliberately excluded: the tree builds are proven to
/// produce the identical index for every thread count, so a snapshot built at
/// one parallelism is valid at any other.
pub fn options_fingerprint(options: &BuildOptions) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(options.leaf_capacity as u64);
    h.write_u64(options.segments as u64);
    h.write_u64(options.alphabet_size as u64);
    h.write_u64(options.buffer_bytes as u64);
    h.write_u64(options.train_samples as u64);
    h.finish()
}

/// The canonical file name of a snapshot: a slug of the payload kind plus
/// both fingerprints, so indexes of different methods, datasets, or options
/// never collide inside one index directory.
pub fn snapshot_file_name(kind: &str, dataset_fp: u64, options_fp: u64) -> String {
    let slug: String = kind
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    format!("{slug}-{dataset_fp:016x}-{options_fp:016x}.snapshot")
}

/// Accumulates a snapshot in memory; [`SnapshotWriter::write_to`] then emits
/// the envelope + payload + checksum to disk in one `std::fs` write.
#[derive(Debug)]
pub struct SnapshotWriter {
    kind: String,
    dataset_fp: u64,
    options_fp: u64,
    payload: Vec<u8>,
}

impl SnapshotSink for SnapshotWriter {
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        self.payload.extend_from_slice(bytes);
        Ok(())
    }
}

impl SnapshotWriter {
    /// Starts a snapshot for the given payload kind and fingerprints.
    pub fn new(kind: &str, dataset_fp: u64, options_fp: u64) -> Self {
        Self {
            kind: kind.to_string(),
            dataset_fp,
            options_fp,
            payload: Vec::new(),
        }
    }

    /// The number of payload bytes buffered so far.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Serializes the envelope and payload to `path`, returning the total
    /// file size in bytes. The file is written atomically enough for the
    /// cache's purposes: a torn write is caught by the checksum on load.
    pub fn write_to(self, path: &Path) -> Result<u64> {
        let mut bytes = Vec::with_capacity(self.payload.len() + 64);
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
        let kind_bytes = self.kind.as_bytes();
        bytes.extend_from_slice(&(kind_bytes.len() as u16).to_le_bytes());
        bytes.extend_from_slice(kind_bytes);
        bytes.extend_from_slice(&self.dataset_fp.to_le_bytes());
        bytes.extend_from_slice(&self.options_fp.to_le_bytes());
        bytes.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&self.payload);
        let mut h = Fnv1a::new();
        h.write_bytes(&bytes);
        bytes.extend_from_slice(&h.finish().to_le_bytes());

        let mut file = std::fs::File::create(path)?;
        file.write_all(&bytes)?;
        file.flush()?;
        Ok(bytes.len() as u64)
    }
}

/// A validated, checksum-verified snapshot file, positioned at the start of
/// the payload.
#[derive(Debug)]
pub struct SnapshotReader {
    data: Vec<u8>,
    /// Offset one past the last payload byte.
    payload_end: usize,
    /// Read cursor, starting at the first payload byte.
    pos: usize,
    kind: String,
    dataset_fp: u64,
    options_fp: u64,
}

fn invalid(msg: impl Into<String>) -> Error {
    Error::InvalidSnapshot(msg.into())
}

impl SnapshotReader {
    /// Reads `path` in full, verifies magic, version, checksum, and the
    /// payload length, and returns a reader positioned at the payload.
    ///
    /// Every malformation is an [`Error::InvalidSnapshot`]; a missing file
    /// surfaces as [`Error::Io`].
    pub fn open(path: &Path) -> Result<Self> {
        let data = std::fs::read(path)?;
        // Envelope floor: magic + version + kind len + fps + payload len + checksum.
        let min_len = MAGIC.len() + 2 + 2 + 8 + 8 + 8 + 8;
        if data.len() < min_len {
            return Err(invalid(format!(
                "file is {} bytes, smaller than the smallest valid snapshot ({min_len})",
                data.len()
            )));
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err(invalid("bad magic: not a hydra snapshot file"));
        }
        let trailer_at = data.len() - 8;
        let stored_checksum = u64::from_le_bytes(data[trailer_at..].try_into().unwrap());
        let mut h = Fnv1a::new();
        h.write_bytes(&data[..trailer_at]);
        if h.finish() != stored_checksum {
            return Err(invalid("checksum mismatch: the file is damaged"));
        }
        let mut cursor = SliceSource::new(&data[MAGIC.len()..trailer_at]);
        let version = cursor.get_u16()?;
        if version != CONTAINER_VERSION {
            return Err(invalid(format!(
                "unsupported container version {version} (this build reads {CONTAINER_VERSION})"
            )));
        }
        let kind_len = cursor.get_u16()? as usize;
        let mut kind_bytes = vec![0u8; kind_len];
        cursor.read_bytes(&mut kind_bytes)?;
        let kind = String::from_utf8(kind_bytes)
            .map_err(|_| invalid("payload kind is not valid UTF-8"))?;
        let dataset_fp = cursor.get_u64()?;
        let options_fp = cursor.get_u64()?;
        let payload_len = cursor.get_u64()? as usize;
        let payload_start = MAGIC.len() + cursor.consumed();
        let payload_end = payload_start
            .checked_add(payload_len)
            .ok_or_else(|| invalid("payload length overflows"))?;
        if payload_end != trailer_at {
            return Err(invalid(format!(
                "payload length {payload_len} does not match the file size"
            )));
        }
        Ok(Self {
            data,
            payload_end,
            pos: payload_start,
            kind,
            dataset_fp,
            options_fp,
        })
    }

    /// The payload kind recorded in the header.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The dataset fingerprint recorded in the header.
    pub fn dataset_fingerprint(&self) -> u64 {
        self.dataset_fp
    }

    /// The options fingerprint recorded in the header.
    pub fn options_fingerprint(&self) -> u64 {
        self.options_fp
    }

    /// The total file size in bytes (what one load physically reads).
    pub fn file_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Errors with [`Error::StaleSnapshot`] unless the header matches the
    /// expected kind and fingerprints.
    pub fn expect(&self, kind: &str, dataset_fp: u64, options_fp: u64) -> Result<()> {
        if self.kind != kind {
            return Err(Error::StaleSnapshot(format!(
                "payload kind is {:?}, expected {kind:?}",
                self.kind
            )));
        }
        if self.dataset_fp != dataset_fp {
            return Err(Error::StaleSnapshot(format!(
                "dataset fingerprint {:016x} does not match the store's {dataset_fp:016x} \
                 (the dataset changed since the snapshot was built)",
                self.dataset_fp
            )));
        }
        if self.options_fp != options_fp {
            return Err(Error::StaleSnapshot(format!(
                "build-options fingerprint {:016x} does not match the requested {options_fp:016x}",
                self.options_fp
            )));
        }
        Ok(())
    }

    /// Errors with [`Error::InvalidSnapshot`] if payload bytes are left over
    /// (a payload/parser mismatch that would otherwise pass silently).
    pub fn finish(&self) -> Result<()> {
        let left = self.payload_end - self.pos;
        if left != 0 {
            return Err(invalid(format!(
                "payload has {left} undecoded trailing bytes"
            )));
        }
        Ok(())
    }
}

impl SnapshotSource for SnapshotReader {
    fn read_bytes(&mut self, buf: &mut [u8]) -> Result<()> {
        let remaining = self.payload_end - self.pos;
        if remaining < buf.len() {
            return Err(invalid(format!(
                "truncated payload: needed {} bytes, {remaining} left",
                buf.len()
            )));
        }
        buf.copy_from_slice(&self.data[self.pos..self.pos + buf.len()]);
        self.pos += buf.len();
        Ok(())
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some((self.payload_end - self.pos) as u64)
    }
}

/// Saves a built index as a snapshot at `path`, charging the written bytes to
/// the store's counters. Returns the file size.
pub fn save_index<I>(
    index: &I,
    store: &DatasetStore,
    options: &BuildOptions,
    path: &Path,
) -> Result<u64>
where
    I: PersistentIndex<Context = Arc<DatasetStore>>,
{
    save_index_with(
        index,
        store,
        dataset_fingerprint(store.dataset()),
        options_fingerprint(options),
        path,
    )
}

/// [`save_index`] with precomputed fingerprints, so a caller that already
/// hashed the dataset (e.g. to derive the file name) does not hash it again.
pub fn save_index_with<I>(
    index: &I,
    store: &DatasetStore,
    dataset_fp: u64,
    options_fp: u64,
    path: &Path,
) -> Result<u64>
where
    I: PersistentIndex<Context = Arc<DatasetStore>>,
{
    let mut writer = SnapshotWriter::new(I::snapshot_kind(), dataset_fp, options_fp);
    index.save_payload(&mut writer)?;
    let bytes = writer.write_to(path)?;
    store.record_index_write(bytes);
    corrupt_if_planned(store, path)?;
    Ok(bytes)
}

/// The snapshot-corruption fault: when the store's [`crate::fault::FaultPlan`]
/// selects this file (keyed deterministically on its name), flip one byte in
/// the middle of the just-written snapshot. The checksum catches it on the
/// next load, exercising the quarantine-and-rebuild recovery path.
fn corrupt_if_planned(store: &DatasetStore, path: &Path) -> Result<()> {
    let name = path
        .file_name()
        .map(|n| n.as_encoded_bytes())
        .unwrap_or(&[]);
    let key = crate::fault::key_for_bytes(name);
    if !store.fault_plan().corrupt_snapshot(key) {
        return Ok(());
    }
    let mut data = std::fs::read(path)?;
    if !data.is_empty() {
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        std::fs::write(path, data)?;
    }
    Ok(())
}

/// Moves a damaged or stale snapshot aside as `<path>.corrupt` so the caller
/// can rebuild and re-save a clean one under the original name. Returns the
/// quarantine path.
pub fn quarantine(path: &Path) -> Result<std::path::PathBuf> {
    let mut quarantined = path.as_os_str().to_owned();
    quarantined.push(".corrupt");
    let quarantined = std::path::PathBuf::from(quarantined);
    std::fs::rename(path, &quarantined)?;
    Ok(quarantined)
}

/// Loads a snapshot from `path` and reattaches it to `store`, charging the
/// read bytes to the store's counters.
///
/// Validation order: container integrity first (magic, version, checksum,
/// length) with [`Error::InvalidSnapshot`], then header agreement (kind and
/// both fingerprints) with [`Error::StaleSnapshot`], then payload decoding.
/// The physical read is charged as soon as the container is open, whether or
/// not the snapshot turns out to be usable — the I/O happened either way.
pub fn load_index<I>(store: Arc<DatasetStore>, options: &BuildOptions, path: &Path) -> Result<I>
where
    I: PersistentIndex<Context = Arc<DatasetStore>>,
{
    let dataset_fp = dataset_fingerprint(store.dataset());
    let options_fp = options_fingerprint(options);
    Ok(load_index_with(store, dataset_fp, options_fp, path)?.0)
}

/// [`load_index`] with precomputed fingerprints; also returns the snapshot's
/// file size (what the counted read charged), saving the caller a re-stat.
pub fn load_index_with<I>(
    store: Arc<DatasetStore>,
    dataset_fp: u64,
    options_fp: u64,
    path: &Path,
) -> Result<(I, u64)>
where
    I: PersistentIndex<Context = Arc<DatasetStore>>,
{
    let mut reader = SnapshotReader::open(path)?;
    let bytes = reader.file_bytes();
    store.record_index_read(bytes);
    reader.expect(I::snapshot_kind(), dataset_fp, options_fp)?;
    let index = I::load_payload(store, &mut reader)?;
    reader.finish()?;
    Ok((index, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hydra-snapshot-unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.snapshot", std::process::id()))
    }

    #[test]
    fn container_round_trips_payload_and_header() {
        let path = temp_path("roundtrip");
        let mut w = SnapshotWriter::new("test/v1", 0xAA, 0xBB);
        w.put_u64(7).unwrap();
        w.put_f64(2.5).unwrap();
        assert_eq!(w.payload_len(), 16);
        let written = w.write_to(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());

        let mut r = SnapshotReader::open(&path).unwrap();
        assert_eq!(r.kind(), "test/v1");
        assert_eq!(r.dataset_fingerprint(), 0xAA);
        assert_eq!(r.options_fingerprint(), 0xBB);
        assert_eq!(r.file_bytes(), written);
        r.expect("test/v1", 0xAA, 0xBB).unwrap();
        assert_eq!(r.get_u64().unwrap(), 7);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        r.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatches_are_stale_errors() {
        let path = temp_path("stale");
        SnapshotWriter::new("kindA", 1, 2).write_to(&path).unwrap();
        let r = SnapshotReader::open(&path).unwrap();
        assert!(matches!(
            r.expect("kindB", 1, 2),
            Err(Error::StaleSnapshot(_))
        ));
        assert!(matches!(
            r.expect("kindA", 9, 2),
            Err(Error::StaleSnapshot(_))
        ));
        assert!(matches!(
            r.expect("kindA", 1, 9),
            Err(Error::StaleSnapshot(_))
        ));
        r.expect("kindA", 1, 2).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damage_is_an_invalid_snapshot_error() {
        let path = temp_path("damage");
        let mut w = SnapshotWriter::new("k", 0, 0);
        w.write_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        w.write_to(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncation.
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(Error::InvalidSnapshot(_))
        ));
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(Error::InvalidSnapshot(_))
        ));
        // Wrong version (re-checksummed, so only the version check fires).
        let mut versioned = good.clone();
        versioned[8] = 0xEE;
        versioned[9] = 0x7F;
        let trailer = versioned.len() - 8;
        let mut h = Fnv1a::new();
        h.write_bytes(&versioned[..trailer]);
        let sum = h.finish().to_le_bytes();
        versioned[trailer..].copy_from_slice(&sum);
        std::fs::write(&path, &versioned).unwrap();
        let err = SnapshotReader::open(&path).unwrap_err();
        assert!(
            matches!(&err, Error::InvalidSnapshot(m) if m.contains("version")),
            "{err}"
        );
        // A payload bit-flip fails the checksum.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        let err = SnapshotReader::open(&path).unwrap_err();
        assert!(
            matches!(&err, Error::InvalidSnapshot(m) if m.contains("checksum")),
            "{err}"
        );
        // An empty file is too small to be a snapshot.
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(Error::InvalidSnapshot(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = temp_path("never-written-such-file-missing");
        std::fs::remove_file(&path).ok();
        assert!(matches!(SnapshotReader::open(&path), Err(Error::Io { .. })));
    }

    #[test]
    fn quarantine_renames_to_dot_corrupt() {
        let path = temp_path("quarantine");
        SnapshotWriter::new("k", 0, 0).write_to(&path).unwrap();
        let moved = quarantine(&path).unwrap();
        assert_eq!(moved.extension().unwrap(), "corrupt");
        assert!(!path.exists());
        assert!(moved.exists());
        // Quarantining a missing file is a (non-retriable) I/O error.
        assert!(matches!(quarantine(&path), Err(Error::Io { .. })));
        std::fs::remove_file(&moved).ok();
    }

    #[test]
    fn fingerprints_detect_any_change() {
        let a = Dataset::from_flat(vec![0.0, 1.0, 2.0, 3.0], 2);
        let mut b = Dataset::from_flat(vec![0.0, 1.0, 2.0, 3.0], 2);
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        b.push(&[4.0, 5.0]);
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        let c = Dataset::from_flat(vec![0.0, 1.0, 2.0, 3.5], 2);
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&c));
        // Same values, different geometry.
        let d = Dataset::from_flat(vec![0.0, 1.0, 2.0, 3.0], 4);
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&d));

        let base = BuildOptions::default();
        assert_eq!(options_fingerprint(&base), options_fingerprint(&base));
        assert_ne!(
            options_fingerprint(&base),
            options_fingerprint(&base.clone().with_leaf_capacity(7))
        );
        assert_ne!(
            options_fingerprint(&base),
            options_fingerprint(&base.clone().with_segments(8))
        );
        // Thread count must NOT invalidate a snapshot: builds are identical
        // for every thread count.
        assert_eq!(
            options_fingerprint(&base),
            options_fingerprint(&base.clone().with_build_threads(8))
        );
    }

    #[test]
    fn file_names_are_unique_per_kind_and_fingerprint() {
        let a = snapshot_file_name("VA+file/v1", 1, 2);
        let b = snapshot_file_name("VA+file/v1", 1, 3);
        let c = snapshot_file_name("DSTree/v1", 1, 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a
            .chars()
            .all(|ch| ch.is_ascii_alphanumeric() || ch == '_' || ch == '-' || ch == '.'));
    }
}

//! I/O accounting: sequential vs random page accesses and bytes read.

use parking_lot::Mutex;
use std::sync::Arc;

// The snapshot type lives in `hydra-core` (the query engine aggregates it
// without depending on this crate); re-exported here so `hydra_storage::
// IoSnapshot` keeps working for existing users.
pub use hydra_core::stats::IoSnapshot;

#[derive(Debug, Default)]
struct Inner {
    snapshot: IoSnapshot,
    last_page: Option<u64>,
}

/// Shared, thread-safe I/O counters.
///
/// Cloning an `IoCounters` yields a handle to the same underlying counters, so
/// a store and the harness can observe the same traffic.
#[derive(Clone, Debug, Default)]
pub struct IoCounters {
    inner: Arc<Mutex<Inner>>,
}

impl IoCounters {
    /// Creates a fresh set of counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `pages` consecutive pages starting at `first_page`,
    /// totalling `bytes` bytes. The first page is classified as sequential if
    /// it immediately follows the last page previously read, random otherwise;
    /// the remaining pages of the run are sequential.
    pub fn record_read_run(&self, first_page: u64, pages: u64, bytes: u64) {
        if pages == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let is_sequential = inner.last_page == Some(first_page.wrapping_sub(1));
        if is_sequential {
            inner.snapshot.sequential_pages += pages;
        } else {
            inner.snapshot.random_pages += 1;
            inner.snapshot.sequential_pages += pages - 1;
        }
        inner.snapshot.bytes_read += bytes;
        inner.last_page = Some(first_page + pages - 1);
    }

    /// Records `bytes` written to the store (index build payloads).
    pub fn record_write(&self, bytes: u64) {
        self.inner.lock().snapshot.bytes_written += bytes;
    }

    /// Explicitly records a seek (e.g. repositioning without reading).
    pub fn record_seek(&self) {
        let mut inner = self.inner.lock();
        inner.last_page = None;
    }

    /// Returns a copy of the current counters.
    pub fn snapshot(&self) -> IoSnapshot {
        self.inner.lock().snapshot
    }

    /// Resets all counters (and the sequentiality tracking) to zero.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.snapshot = IoSnapshot::default();
        inner.last_page = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_runs_count_as_sequential() {
        let c = IoCounters::new();
        c.record_read_run(0, 4, 4096);
        // First access is random (cold start), remaining 3 sequential.
        let s = c.snapshot();
        assert_eq!(s.random_pages, 1);
        assert_eq!(s.sequential_pages, 3);
        // Continuing right after page 3 is fully sequential.
        c.record_read_run(4, 2, 2048);
        let s = c.snapshot();
        assert_eq!(s.random_pages, 1);
        assert_eq!(s.sequential_pages, 5);
        assert_eq!(s.bytes_read, 6144);
        assert_eq!(s.total_pages(), 6);
    }

    #[test]
    fn jumps_count_as_random() {
        let c = IoCounters::new();
        c.record_read_run(0, 1, 1024);
        c.record_read_run(100, 1, 1024);
        c.record_read_run(50, 1, 1024);
        let s = c.snapshot();
        assert_eq!(s.random_pages, 3);
        assert_eq!(s.sequential_pages, 0);
    }

    #[test]
    fn seek_breaks_sequentiality() {
        let c = IoCounters::new();
        c.record_read_run(0, 1, 10);
        c.record_seek();
        c.record_read_run(1, 1, 10);
        let s = c.snapshot();
        assert_eq!(
            s.random_pages, 2,
            "the post-seek read must be classified random"
        );
    }

    #[test]
    fn writes_and_reset() {
        let c = IoCounters::new();
        c.record_write(500);
        c.record_write(500);
        assert_eq!(c.snapshot().bytes_written, 1000);
        c.reset();
        assert_eq!(c.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_difference() {
        let c = IoCounters::new();
        c.record_read_run(0, 2, 100);
        let before = c.snapshot();
        c.record_read_run(2, 3, 200);
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.sequential_pages, 3);
        assert_eq!(delta.random_pages, 0);
        assert_eq!(delta.bytes_read, 200);
    }

    #[test]
    fn clones_share_state() {
        let c = IoCounters::new();
        let c2 = c.clone();
        c.record_read_run(7, 1, 64);
        assert_eq!(c2.snapshot().total_pages(), 1);
    }

    #[test]
    fn zero_page_read_is_ignored() {
        let c = IoCounters::new();
        c.record_read_run(0, 0, 0);
        assert_eq!(c.snapshot(), IoSnapshot::default());
    }
}

//! I/O accounting: sequential vs random page accesses and bytes read.
//!
//! The counters are **sharded per thread**: every recording thread owns a
//! private shard with its own running totals and its own sequentiality
//! tracking (its own simulated disk head). The global [`IoCounters::snapshot`]
//! is the exact sum over all shards, so aggregate totals stay correct no
//! matter how many threads hammer the store concurrently, while
//! [`IoCounters::thread_snapshot`] lets a worker observe exactly the traffic
//! of the query it is answering — the property the parallel workload driver
//! relies on to keep per-query I/O stats identical to a serial run.
//!
//! The hot path is contention-free: after a thread's first access, its shard
//! handle is cached in thread-local storage, so recording locks only the
//! caller's own (uncontended) shard mutex. The shared registry mutex is taken
//! only on first access per thread, and by `snapshot`/`reset`. Shards of
//! exited threads are folded into an orphan accumulator whenever the registry
//! is visited (a snapshot, a reset, or a new thread registering), so the
//! shard map stays bounded by the number of live threads while aggregate
//! totals remain exact.

use parking_lot::Mutex;
use std::cell::RefCell;
// hydra-lint: allow(hash-iteration-order) shard values are summed; u64 addition commutes
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
// hydra-lint: allow(nondeterministic-source) thread ids only shard counters; sums commute
use std::thread::{self, ThreadId};

// The snapshot type lives in `hydra-core` (the query engine aggregates it
// without depending on this crate); re-exported here so `hydra_storage::
// IoSnapshot` keeps working for existing users.
pub use hydra_core::stats::IoSnapshot;

/// One thread's private counters plus its sequentiality tracking.
#[derive(Debug, Default)]
struct Shard {
    snapshot: IoSnapshot,
    last_page: Option<u64>,
}

impl Shard {
    fn clear(&mut self) {
        self.snapshot = IoSnapshot::default();
        self.last_page = None;
    }
}

fn add(total: &mut IoSnapshot, part: &IoSnapshot) {
    total.sequential_pages += part.sequential_pages;
    total.random_pages += part.random_pages;
    total.bytes_read += part.bytes_read;
    total.bytes_written += part.bytes_written;
}

#[derive(Debug, Default)]
struct Registry {
    // hydra-lint: allow(nondeterministic-source) thread id keys shard the counters; sums commute
    // hydra-lint: allow(hash-iteration-order) iterated only to sum u64 counters, which commutes
    shards: HashMap<ThreadId, Arc<Mutex<Shard>>>,
    /// Traffic of exited threads, folded in when their shards are collected.
    orphaned: IoSnapshot,
}

impl Registry {
    /// Moves the counts of shards no longer referenced by any live thread
    /// into the orphan accumulator. A live thread always holds a strong
    /// cached `Arc` to its shard, so a strong count of 1 — the registry's
    /// own — means the owning thread has exited; new threads can only obtain
    /// a handle through this registry, which the caller has locked, so the
    /// check cannot race with a registration.
    fn collect_orphans(&mut self) {
        self.shards.retain(|_, shard| {
            if Arc::strong_count(shard) > 1 {
                return true;
            }
            let orphan = shard.lock();
            add(&mut self.orphaned, &orphan.snapshot);
            false
        });
    }
}

#[derive(Debug)]
struct Inner {
    id: u64,
    registry: Mutex<Registry>,
}

/// One thread-local cache entry: the shard this thread registered with a
/// counters instance. The shard `Arc` is strong — it marks the thread as
/// alive to [`Registry::collect_orphans`] — while the `Weak<Inner>` only
/// tracks whether the counters instance itself still exists, so dropped
/// instances can be swept from the cache.
struct CachedShard {
    counters_id: u64,
    shard: Arc<Mutex<Shard>>,
    instance: Weak<Inner>,
}

thread_local! {
    /// Cached shard handles of this thread, keyed by counters-instance id.
    /// Entries of dropped `IoCounters` instances are swept on every miss.
    static SHARD_CACHE: RefCell<Vec<CachedShard>> = const { RefCell::new(Vec::new()) };
}

/// Shared, thread-safe I/O counters.
///
/// Cloning an `IoCounters` yields a handle to the same underlying counters, so
/// a store and the harness can observe the same traffic.
#[derive(Clone, Debug)]
pub struct IoCounters {
    inner: Arc<Inner>,
}

impl Default for IoCounters {
    fn default() -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        Self {
            inner: Arc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                registry: Mutex::new(Registry::default()),
            }),
        }
    }
}

impl IoCounters {
    /// Creates a fresh set of counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The calling thread's shard, from the thread-local cache when possible.
    fn shard(&self) -> Arc<Mutex<Shard>> {
        SHARD_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(entry) = cache.iter().find(|e| e.counters_id == self.inner.id) {
                return entry.shard.clone();
            }
            // Miss: sweep entries of dropped instances, then register with
            // the shared registry. Collecting orphans here keeps the shard
            // map bounded even when nothing ever takes a global snapshot:
            // every new worker thread's first access sweeps the shards of
            // previously exited workers.
            cache.retain(|e| e.instance.strong_count() > 0);
            let shard = {
                let mut registry = self.inner.registry.lock();
                registry.collect_orphans();
                registry
                    .shards
                    // hydra-lint: allow(nondeterministic-source) selects the calling thread's shard; totals unaffected
                    .entry(thread::current().id())
                    .or_default()
                    .clone()
            };
            cache.push(CachedShard {
                counters_id: self.inner.id,
                shard: shard.clone(),
                instance: Arc::downgrade(&self.inner),
            });
            shard
        })
    }

    /// Records a read of `pages` consecutive pages starting at `first_page`,
    /// totalling `bytes` bytes. The first page is classified as sequential if
    /// it immediately follows the last page previously read *by this thread*
    /// (each thread models its own disk head), random otherwise; the remaining
    /// pages of the run are sequential.
    pub fn record_read_run(&self, first_page: u64, pages: u64, bytes: u64) {
        if pages == 0 {
            return;
        }
        let shard = self.shard();
        let mut shard = shard.lock();
        let is_sequential = shard.last_page == Some(first_page.wrapping_sub(1));
        if is_sequential {
            shard.snapshot.sequential_pages += pages;
        } else {
            shard.snapshot.random_pages += 1;
            shard.snapshot.sequential_pages += pages - 1;
        }
        shard.snapshot.bytes_read += bytes;
        shard.last_page = Some(first_page + pages - 1);
    }

    /// Records `bytes` read without any page traffic or head movement: the
    /// requested range lies entirely inside pages already charged by an
    /// earlier read on this thread.
    pub fn record_read_bytes(&self, bytes: u64) {
        self.shard().lock().snapshot.bytes_read += bytes;
    }

    /// Records `pages` extra random page accesses without moving the disk
    /// head: a fault-injected latency surcharge, charged in cost-model units
    /// so degraded runs stay deterministic.
    pub fn record_surcharge(&self, pages: u64) {
        if pages == 0 {
            return;
        }
        self.shard().lock().snapshot.random_pages += pages;
    }

    /// Records `bytes` written to the store (index build payloads).
    pub fn record_write(&self, bytes: u64) {
        self.shard().lock().snapshot.bytes_written += bytes;
    }

    /// Records a read of `pages` pages from a *different* file than the raw
    /// dataset (an index snapshot): one seek to reach it, the remaining pages
    /// sequential, and the raw-file head position is forgotten — the next
    /// dataset read has to seek back.
    pub fn record_detached_read(&self, pages: u64, bytes: u64) {
        if pages == 0 {
            return;
        }
        let shard = self.shard();
        let mut shard = shard.lock();
        shard.snapshot.random_pages += 1;
        shard.snapshot.sequential_pages += pages - 1;
        shard.snapshot.bytes_read += bytes;
        shard.last_page = None;
    }

    /// Explicitly records a seek (e.g. repositioning without reading).
    pub fn record_seek(&self) {
        self.shard().lock().last_page = None;
    }

    /// Returns the exact aggregate over every thread's traffic (including
    /// threads that have since exited).
    pub fn snapshot(&self) -> IoSnapshot {
        let mut registry = self.inner.registry.lock();
        registry.collect_orphans();
        let mut total = registry.orphaned;
        for shard in registry.shards.values() {
            add(&mut total, &shard.lock().snapshot);
        }
        total
    }

    /// Returns a copy of the calling thread's counters only.
    pub fn thread_snapshot(&self) -> IoSnapshot {
        self.shard().lock().snapshot
    }

    /// Resets all counters of every thread (and the sequentiality tracking)
    /// to zero.
    pub fn reset(&self) {
        let mut registry = self.inner.registry.lock();
        registry.collect_orphans();
        registry.orphaned = IoSnapshot::default();
        for shard in registry.shards.values() {
            shard.lock().clear();
        }
    }

    /// Resets the calling thread's counters (and its sequentiality tracking)
    /// without touching other threads' shards.
    pub fn reset_thread(&self) {
        self.shard().lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_runs_count_as_sequential() {
        let c = IoCounters::new();
        c.record_read_run(0, 4, 4096);
        // First access is random (cold start), remaining 3 sequential.
        let s = c.snapshot();
        assert_eq!(s.random_pages, 1);
        assert_eq!(s.sequential_pages, 3);
        // Continuing right after page 3 is fully sequential.
        c.record_read_run(4, 2, 2048);
        let s = c.snapshot();
        assert_eq!(s.random_pages, 1);
        assert_eq!(s.sequential_pages, 5);
        assert_eq!(s.bytes_read, 6144);
        assert_eq!(s.total_pages(), 6);
    }

    #[test]
    fn jumps_count_as_random() {
        let c = IoCounters::new();
        c.record_read_run(0, 1, 1024);
        c.record_read_run(100, 1, 1024);
        c.record_read_run(50, 1, 1024);
        let s = c.snapshot();
        assert_eq!(s.random_pages, 3);
        assert_eq!(s.sequential_pages, 0);
    }

    #[test]
    fn seek_breaks_sequentiality() {
        let c = IoCounters::new();
        c.record_read_run(0, 1, 10);
        c.record_seek();
        c.record_read_run(1, 1, 10);
        let s = c.snapshot();
        assert_eq!(
            s.random_pages, 2,
            "the post-seek read must be classified random"
        );
    }

    #[test]
    fn writes_and_reset() {
        let c = IoCounters::new();
        c.record_write(500);
        c.record_write(500);
        assert_eq!(c.snapshot().bytes_written, 1000);
        c.reset();
        assert_eq!(c.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_difference() {
        let c = IoCounters::new();
        c.record_read_run(0, 2, 100);
        let before = c.snapshot();
        c.record_read_run(2, 3, 200);
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.sequential_pages, 3);
        assert_eq!(delta.random_pages, 0);
        assert_eq!(delta.bytes_read, 200);
    }

    #[test]
    fn clones_share_state() {
        let c = IoCounters::new();
        let c2 = c.clone();
        c.record_read_run(7, 1, 64);
        assert_eq!(c2.snapshot().total_pages(), 1);
    }

    #[test]
    fn zero_page_read_is_ignored() {
        let c = IoCounters::new();
        c.record_read_run(0, 0, 0);
        assert_eq!(c.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn byte_only_reads_do_not_move_the_head() {
        let c = IoCounters::new();
        c.record_read_run(0, 2, 100);
        c.record_read_bytes(50);
        // The head is still at page 1: the next read continues sequentially.
        c.record_read_run(2, 1, 25);
        let snap = c.snapshot();
        assert_eq!(snap.random_pages, 1);
        assert_eq!(snap.sequential_pages, 2);
        assert_eq!(snap.bytes_read, 175);
    }

    #[test]
    fn surcharges_add_random_pages_without_breaking_the_head() {
        let c = IoCounters::new();
        c.record_read_run(0, 2, 100);
        c.record_surcharge(4);
        c.record_surcharge(0);
        c.record_read_run(2, 1, 50);
        let snap = c.snapshot();
        assert_eq!(snap.random_pages, 5);
        assert_eq!(snap.sequential_pages, 2);
    }

    #[test]
    fn distinct_counter_instances_are_independent_on_one_thread() {
        let a = IoCounters::new();
        let b = IoCounters::new();
        a.record_read_run(0, 1, 100);
        b.record_read_run(0, 2, 200);
        assert_eq!(a.thread_snapshot().total_pages(), 1);
        assert_eq!(b.thread_snapshot().total_pages(), 2);
        a.reset_thread();
        assert_eq!(a.snapshot(), IoSnapshot::default());
        assert_eq!(b.snapshot().bytes_read, 200);
    }

    #[test]
    fn thread_snapshot_sees_only_the_calling_thread() {
        let c = IoCounters::new();
        c.record_read_run(0, 2, 2048);
        let c2 = c.clone();
        std::thread::spawn(move || {
            c2.record_read_run(100, 3, 3072);
            // The worker sees its own traffic...
            assert_eq!(c2.thread_snapshot().total_pages(), 3);
            c2.reset_thread();
            assert_eq!(c2.thread_snapshot(), IoSnapshot::default());
            // ...and clearing its shard leaves other shards alone.
            assert_eq!(c2.snapshot().total_pages(), 2);
        })
        .join()
        .unwrap();
        assert_eq!(c.thread_snapshot().total_pages(), 2);
        assert_eq!(c.snapshot().total_pages(), 2);
    }

    #[test]
    fn each_thread_tracks_its_own_disk_head() {
        // Two threads reading interleaved contiguous runs: with a shared head
        // the interleaving would turn everything random; per-thread heads keep
        // each thread's contiguous progression sequential.
        let c = IoCounters::new();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let c = c.clone();
                s.spawn(move || {
                    for page in 0..64u64 {
                        c.record_read_run(page, 1, 512);
                    }
                });
            }
        });
        let total = c.snapshot();
        assert_eq!(total.total_pages(), 128);
        // Exactly one cold-start seek per thread.
        assert_eq!(total.random_pages, 2);
        assert_eq!(total.sequential_pages, 126);
        assert_eq!(total.bytes_read, 128 * 512);
    }

    #[test]
    fn exited_threads_counts_survive_and_their_shards_are_collected() {
        let c = IoCounters::new();
        for wave in 0..16 {
            let c2 = c.clone();
            std::thread::spawn(move || c2.record_read_run(wave * 10, 1, 64))
                .join()
                .unwrap();
        }
        // Dead threads' traffic stays in the aggregate...
        assert_eq!(c.snapshot().total_pages(), 16);
        // ...but their shards were folded into the orphan accumulator, so the
        // map holds at most the live threads that ever touched the counters.
        assert!(c.inner.registry.lock().shards.len() <= 1);
        assert_eq!(c.inner.registry.lock().orphaned.total_pages(), 16);
        c.reset();
        assert_eq!(c.snapshot(), IoSnapshot::default());
    }
}

//! # hydra-sfa
//!
//! The SFA trie: a prefix tree over Symbolic Fourier Approximation words.
//!
//! Every series is summarized by an SFA word (its first `l` DFT values, each
//! discretized with per-dimension breakpoints learned from a sample — see
//! `hydra_transforms::sfa`). The trie groups series by word prefix: the root's
//! children are keyed by the first symbol, their children by the second, and
//! so on. When a leaf exceeds its capacity and has not yet used all `l`
//! symbols, it splits by the next symbol position, increasing the resolution
//! of the words stored below it by one coefficient — the "vertical" splitting
//! the paper contrasts with SAX's horizontal splits.
//!
//! Exact search is a best-first traversal ordered by the prefix lower bound;
//! when a leaf is reached, all of its raw series are read (one contiguous leaf
//! read) and refined with early-abandoning Euclidean distance.

use hydra_core::persist::{PersistentIndex, SnapshotSink, SnapshotSource};
use hydra_core::{
    parallel, replay_outcome, AnswerMode, AnswerSet, AnsweringMethod, BudgetMeter, BuildOptions,
    Dataset, Error, ExactIndex, IndexFootprint, IntraAnswering, KnnHeap, MethodDescriptor,
    ModeCapabilities, Outcome, Query, QueryStats, Result, SharedBsf,
};
use hydra_storage::DatasetStore;
use hydra_transforms::{BinningMethod, SfaParams, SfaQuantizer, SfaWord};
use std::cmp::Ordering;
// hydra-lint: allow(hash-iteration-order) replay map is keyed lookup only; never iterated
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;

/// How a leaf scan evaluates candidate distances: directly (the serial path)
/// or by replaying worker-recorded [`Outcome`]s against the serial threshold
/// (the intra-query path). Replay falls back to direct evaluation for leaves
/// absent from the map, so correctness never depends on which leaves the
/// workers chose to precompute.
enum LeafEval<'a> {
    Direct,
    // hydra-lint: allow(hash-iteration-order) evidence fetched per leaf id; never iterated
    Replay(&'a HashMap<usize, Vec<Outcome>>),
}

/// One entry stored in a trie leaf.
#[derive(Clone, Debug)]
struct LeafEntry {
    id: u32,
    word: SfaWord,
}

/// A node of the SFA trie.
#[derive(Clone, Debug)]
enum TrieNode {
    /// Internal node: children keyed by the symbol at position `depth`.
    ///
    /// A `BTreeMap` so that iterating the children (the best-first search
    /// pushes one frontier entry per child) follows a deterministic symbol
    /// order — a fresh build and a reloaded snapshot then traverse
    /// identically even when prefix lower bounds tie.
    Internal { children: BTreeMap<u8, usize> },
    /// Leaf node holding entries sharing the prefix leading to it.
    Leaf { entries: Vec<LeafEntry> },
}

/// The SFA trie index.
pub struct SfaTrie {
    store: Arc<DatasetStore>,
    quantizer: SfaQuantizer,
    nodes: Vec<TrieNode>,
    /// Prefix (and therefore depth) of each node; the root has an empty prefix.
    prefixes: Vec<Vec<u8>>,
    leaf_capacity: usize,
}

struct Frontier {
    lower_bound: f64,
    node: usize,
}
impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.lower_bound == other.lower_bound
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        other.lower_bound.total_cmp(&self.lower_bound)
    }
}

impl SfaTrie {
    /// Builds the SFA trie over an instrumented store.
    ///
    /// `options.segments` is the SFA word length; `options.alphabet_size` the
    /// per-dimension alphabet (the paper's tuned value is 8);
    /// `options.train_samples` controls the breakpoint-learning sample.
    pub fn build_on_store(store: Arc<DatasetStore>, options: &BuildOptions) -> Result<Self> {
        Self::build_with_binning(store, options, BinningMethod::EquiDepth)
    }

    /// Builds the trie with an explicit binning method (used by the ablation
    /// experiments; the paper found equi-depth superior).
    pub fn build_with_binning(
        store: Arc<DatasetStore>,
        options: &BuildOptions,
        binning: BinningMethod,
    ) -> Result<Self> {
        if store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        options.validate(store.series_length())?;
        let alphabet = options.alphabet_size.clamp(2, 256);
        let params = SfaParams {
            series_length: store.series_length(),
            word_length: options.segments,
            alphabet_size: alphabet,
            binning,
        };
        let sample_size = options.train_samples.clamp(1, store.len());
        let dataset = store.dataset();
        let quantizer =
            SfaQuantizer::train(params, (0..sample_size).map(|i| dataset.series(i).values()));
        let threads = parallel::resolve_threads(options.build_threads);
        // One sequential pass over the raw data (charged up front), then
        // summarization spread over the workers in dataset order.
        store.scan_all(|_, _| {});
        let entries: Vec<LeafEntry> = parallel::map_chunks(store.len(), threads, |range| {
            range
                .map(|id| LeafEntry {
                    id: id as u32,
                    word: quantizer.word(dataset.series(id).values()),
                })
                .collect()
        });
        let mut trie = Self {
            store: store.clone(),
            quantizer,
            nodes: Vec::new(),
            prefixes: Vec::new(),
            leaf_capacity: options.leaf_capacity,
        };
        trie.build_from_entries(entries, threads);
        store.record_index_write((store.len() * store.series_bytes()) as u64);
        Ok(trie)
    }

    /// The trained quantizer.
    pub fn quantizer(&self) -> &SfaQuantizer {
        &self.quantizer
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// Total number of entries stored.
    pub fn num_entries(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                TrieNode::Leaf { entries } => entries.len(),
                _ => 0,
            })
            .sum()
    }

    /// The number of trie nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Builds the trie over `entries` with up to `threads` workers.
    ///
    /// A node at prefix `p` is internal exactly when more than `leaf_capacity`
    /// entries share `p` and `p` is shorter than the word, so the trie shape
    /// is fully determined by the entry multiset: the recursive bulk build
    /// below produces the same trie as one-by-one insertion, and the
    /// first-symbol subtries are independent — each can be built on its own
    /// worker and grafted under the root. The result is **identical for every
    /// thread count**.
    fn build_from_entries(&mut self, entries: Vec<LeafEntry>, threads: usize) {
        let word_length = self.quantizer.params().word_length;
        let splittable = entries.len() > self.leaf_capacity && word_length > 0;
        if !splittable || threads <= 1 {
            build_subtrie(
                &mut self.nodes,
                &mut self.prefixes,
                Vec::new(),
                entries,
                self.leaf_capacity,
                word_length,
            );
            return;
        }
        // Partition by the first symbol (deterministic order via BTreeMap) and
        // build each subtrie on its own worker, consuming its bucket.
        let mut grouped: BTreeMap<u8, Vec<LeafEntry>> = BTreeMap::new();
        for e in entries {
            grouped.entry(e.word.symbols[0]).or_default().push(e);
        }
        let (symbols, payloads): (Vec<u8>, Vec<Vec<LeafEntry>>) = grouped.into_iter().unzip();
        let leaf_capacity = self.leaf_capacity;
        let subtries: Vec<(Vec<TrieNode>, Vec<Vec<u8>>)> =
            parallel::map_items(payloads, threads, |i, bucket| {
                let mut nodes = Vec::new();
                let mut prefixes = Vec::new();
                build_subtrie(
                    &mut nodes,
                    &mut prefixes,
                    vec![symbols[i]],
                    bucket,
                    leaf_capacity,
                    word_length,
                );
                (nodes, prefixes)
            });
        // Graft the subtrie arenas under an internal root, offsetting ids.
        self.nodes.push(TrieNode::Internal {
            children: BTreeMap::new(),
        });
        self.prefixes.push(Vec::new());
        let mut children = BTreeMap::new();
        for (&symbol, (nodes, prefixes)) in symbols.iter().zip(subtries) {
            let offset = self.nodes.len();
            children.insert(symbol, offset);
            for mut node in nodes {
                if let TrieNode::Internal { children } = &mut node {
                    for child in children.values_mut() {
                        *child += offset;
                    }
                }
                self.nodes.push(node);
            }
            self.prefixes.extend(prefixes);
        }
        self.nodes[0] = TrieNode::Internal { children };
    }

    /// Scans one leaf, either evaluating distances directly or replaying
    /// worker-recorded outcomes against the serial threshold.
    fn scan_leaf_with(
        &self,
        leaf: usize,
        query: &Query,
        heap: &mut KnnHeap,
        meter: &mut BudgetMeter,
        stats: &mut QueryStats,
        eval: &LeafEval<'_>,
    ) -> Result<()> {
        let TrieNode::Leaf { entries } = &self.nodes[leaf] else {
            return Ok(());
        };
        if entries.is_empty() {
            return Ok(());
        }
        // Fault checkpoint for the leaf's materialized payload read, keyed
        // by its first series so an injected fault is stable per leaf.
        self.store.try_access(entries[0].id as u64)?;
        stats.record_leaf_visit();
        let leaf_bytes = (entries.len() * self.store.series_bytes()) as u64;
        let pages = leaf_bytes.div_ceil(self.store.page_bytes() as u64).max(1);
        stats.record_io(pages - 1, 1, leaf_bytes);
        let dataset = self.store.dataset();
        let recorded = match eval {
            LeafEval::Direct => None,
            LeafEval::Replay(map) => map.get(&leaf),
        };
        for (i, e) in entries.iter().enumerate() {
            if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                break;
            }
            stats.record_raw_series_examined(1);
            let series = dataset.series(e.id as usize);
            let kernel = |threshold: f64| {
                hydra_core::distance::squared_euclidean_early_abandon(
                    query.values(),
                    series.values(),
                    threshold,
                )
            };
            let result = match recorded {
                Some(outcomes) => replay_outcome(outcomes[i], heap.threshold_squared(), kernel),
                None => kernel(heap.threshold_squared()),
            };
            match result {
                Some(sq) => {
                    heap.offer(e.id as usize, sq.sqrt());
                }
                None => stats.record_early_abandon(),
            }
        }
        Ok(())
    }

    /// Descends to the leaf matching the query's word as far as possible
    /// (ng-approximate search).
    fn descend(&self, word: &SfaWord, stats: &mut QueryStats) -> usize {
        let mut current = 0usize;
        loop {
            let depth = self.prefixes[current].len();
            match &self.nodes[current] {
                TrieNode::Internal { children } => {
                    stats.record_internal_visit();
                    let symbol = word.symbols[depth];
                    match children.get(&symbol) {
                        Some(&child) => current = child,
                        None => {
                            // No child for the query's symbol: fall back to any
                            // child (the closest by symbol value).
                            let Some((_, &child)) = children
                                .iter()
                                .min_by_key(|(s, _)| (**s as i32 - symbol as i32).abs())
                            else {
                                return current;
                            };
                            current = child;
                        }
                    }
                }
                TrieNode::Leaf { .. } => return current,
            }
        }
    }
}

/// Appends the subtrie covering `entries` (which all share `prefix`) to the
/// arena and returns its root node id. Recursion depth is bounded by the SFA
/// word length.
fn build_subtrie(
    nodes: &mut Vec<TrieNode>,
    prefixes: &mut Vec<Vec<u8>>,
    prefix: Vec<u8>,
    entries: Vec<LeafEntry>,
    leaf_capacity: usize,
    word_length: usize,
) -> usize {
    let id = nodes.len();
    let depth = prefix.len();
    if entries.len() <= leaf_capacity || depth >= word_length {
        nodes.push(TrieNode::Leaf { entries });
        prefixes.push(prefix);
        return id;
    }
    nodes.push(TrieNode::Internal {
        children: BTreeMap::new(),
    });
    prefixes.push(prefix.clone());
    let mut buckets: BTreeMap<u8, Vec<LeafEntry>> = BTreeMap::new();
    for e in entries {
        buckets.entry(e.word.symbols[depth]).or_default().push(e);
    }
    let mut children = BTreeMap::new();
    for (symbol, bucket) in buckets {
        let mut child_prefix = prefix.clone();
        child_prefix.push(symbol);
        let child = build_subtrie(
            nodes,
            prefixes,
            child_prefix,
            bucket,
            leaf_capacity,
            word_length,
        );
        children.insert(symbol, child);
    }
    nodes[id] = TrieNode::Internal { children };
    id
}

impl AnsweringMethod for SfaTrie {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "SFA trie",
            representation: "SFA",
            is_index: true,
            modes: ModeCapabilities::all(),
        }
    }

    fn index_footprint(&self) -> Option<IndexFootprint> {
        Some(ExactIndex::footprint(self))
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        self.answer_with_eval(query, stats, &LeafEval::Direct)
    }

    fn intra_answering(&self) -> Option<&dyn IntraAnswering> {
        Some(self)
    }
}

impl SfaTrie {
    fn answer_with_eval(
        &self,
        query: &Query,
        stats: &mut QueryStats,
        eval: &LeafEval<'_>,
    ) -> Result<AnswerSet> {
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("SFA trie")?;
        let mode = query.mode();
        let clock = hydra_core::RunClock::start();
        let q_dft = self.quantizer.dft(query.values());
        let q_word = self.quantizer.word_from_dft(&q_dft);
        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());

        // Approximate descent for the initial best-so-far — the whole answer
        // in ng-approximate mode.
        let seed_leaf = self.descend(&q_word, stats);
        self.scan_leaf_with(seed_leaf, query, &mut heap, &mut meter, stats, eval)?;

        if mode != AnswerMode::NgApproximate {
            // Best-first traversal on prefix lower bounds, relaxed by
            // `shrink = δ/(1+ε)` in the approximate modes (1 for exact, so
            // ε = 0 is bit-identical to exact search).
            let shrink = mode.prune_shrink();
            let mut frontier = BinaryHeap::new();
            frontier.push(Frontier {
                lower_bound: 0.0,
                node: 0,
            });
            while let Some(Frontier { lower_bound, node }) = frontier.pop() {
                if meter.is_truncated() {
                    break; // budget exhausted: keep the best-so-far
                }
                if heap.is_full() && lower_bound >= heap.threshold() * shrink {
                    break;
                }
                match &self.nodes[node] {
                    TrieNode::Leaf { .. } => {
                        if node != seed_leaf {
                            self.scan_leaf_with(node, query, &mut heap, &mut meter, stats, eval)?;
                        }
                    }
                    TrieNode::Internal { children } => {
                        stats.record_internal_visit();
                        for &child in children.values() {
                            let prefix = &self.prefixes[child];
                            let lb = self.quantizer.mindist_prefix(&q_dft, prefix, prefix.len());
                            stats.record_lower_bounds(1);
                            if !heap.is_full() || lb < heap.threshold() * shrink {
                                frontier.push(Frontier {
                                    lower_bound: lb,
                                    node: child,
                                });
                            }
                        }
                    }
                }
            }
        }
        stats.cpu_time += clock.elapsed();
        let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }
}

impl IntraAnswering for SfaTrie {
    fn answer_intra(
        &self,
        query: &Query,
        threads: usize,
        stats: &mut QueryStats,
    ) -> Result<AnswerSet> {
        if query.mode() == AnswerMode::NgApproximate {
            // ng-approximate scans a single leaf: nothing to fan out.
            return self.answer(query, stats);
        }
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("SFA trie")?;
        let mode = query.mode();
        let shrink = mode.prune_shrink();
        let q_dft = self.quantizer.dft(query.values());
        let q_word = self.quantizer.word_from_dft(&q_dft);

        // Phase A (serial, scratch stats): seed a best-so-far from the
        // approximate descent, exactly as the serial path does. The replay in
        // phase C repeats this with the real stats, so nothing is counted here.
        let mut scratch = QueryStats::default();
        let mut scratch_meter = BudgetMeter::new(query.budget(), self.store.len());
        let mut seed_heap = KnnHeap::new(k);
        let seed_leaf = self.descend(&q_word, &mut scratch);
        self.scan_leaf_with(
            seed_leaf,
            query,
            &mut seed_heap,
            &mut scratch_meter,
            &mut scratch,
            &LeafEval::Direct,
        )?;
        let seed_threshold = seed_heap.threshold();

        // Candidate leaves: every leaf the serial traversal could possibly
        // scan (a superset — its bound check uses the *seed* threshold, which
        // is never tighter than the serial threshold at visit time). The seed
        // leaf is excluded: the traversal never rescans it, and the replayed
        // seed scan starts from an empty heap where recorded tight-threshold
        // abandons would all recompute anyway.
        let candidates: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(id, node)| {
                *id != seed_leaf
                    && matches!(node, TrieNode::Leaf { entries } if !entries.is_empty())
            })
            .map(|(id, _)| id)
            .filter(|&id| {
                if !seed_heap.is_full() {
                    return true;
                }
                let prefix = &self.prefixes[id];
                let lb = self.quantizer.mindist_prefix(&q_dft, prefix, prefix.len());
                lb < seed_threshold * shrink
            })
            .collect();

        // Phase B (parallel): evaluate candidate leaves with a shared atomic
        // best-so-far. Workers record per-entry outcomes; thresholds may be
        // stale or tighter than serial, which `replay_outcome` reconciles.
        let dataset = self.store.dataset();
        let bsf = SharedBsf::new(seed_heap.threshold_squared());
        let per_leaf: Vec<Vec<Outcome>> = parallel::map_indexed(candidates.len(), threads, |ci| {
            let leaf = candidates[ci];
            let TrieNode::Leaf { entries } = &self.nodes[leaf] else {
                unreachable!("candidates only contain leaves");
            };
            let mut local = seed_heap.clone();
            let mut outcomes = Vec::with_capacity(entries.len());
            for e in entries {
                let threshold = local.threshold_squared().min(bsf.get());
                let series = dataset.series(e.id as usize);
                match hydra_core::distance::squared_euclidean_early_abandon(
                    query.values(),
                    series.values(),
                    threshold,
                ) {
                    Some(sq) => {
                        outcomes.push(Outcome::Computed(sq));
                        local.offer(e.id as usize, sq.sqrt());
                        bsf.update_min(local.threshold_squared());
                    }
                    None => outcomes.push(Outcome::Abandoned { threshold }),
                }
            }
            outcomes
        });
        // hydra-lint: allow(hash-iteration-order) keyed lookup during serial replay; never iterated
        let recorded: HashMap<usize, Vec<Outcome>> = candidates.into_iter().zip(per_leaf).collect();

        // Phase C (serial): replay the exact serial traversal, deciding each
        // candidate from the recorded evidence. Answers and counters are
        // bit-identical to the serial path.
        self.answer_with_eval(query, stats, &LeafEval::Replay(&recorded))
    }
}

impl ExactIndex for SfaTrie {
    fn build(dataset: &Dataset, options: &BuildOptions) -> Result<Self> {
        Self::build_on_store(Arc::new(DatasetStore::new(dataset.clone())), options)
    }

    fn footprint(&self) -> IndexFootprint {
        let mut leaf_fill_factors = Vec::new();
        let mut leaf_depths = Vec::new();
        let mut leaf_nodes = 0usize;
        let mut disk_bytes = 0usize;
        let word_length = self.quantizer.params().word_length;
        for (i, n) in self.nodes.iter().enumerate() {
            if let TrieNode::Leaf { entries } = n {
                leaf_nodes += 1;
                leaf_fill_factors.push(entries.len() as f64 / self.leaf_capacity as f64);
                leaf_depths.push(self.prefixes[i].len());
                disk_bytes += entries.len() * self.store.series_bytes();
            }
        }
        let memory_bytes = self.nodes.len() * std::mem::size_of::<TrieNode>()
            + self.num_entries() * (std::mem::size_of::<LeafEntry>() + word_length);
        IndexFootprint {
            total_nodes: self.nodes.len(),
            leaf_nodes,
            memory_bytes,
            disk_bytes,
            leaf_fill_factors,
            leaf_depths,
        }
    }

    fn num_series(&self) -> usize {
        self.store.len()
    }

    fn series_length(&self) -> usize {
        self.store.series_length()
    }
}

impl PersistentIndex for SfaTrie {
    type Context = Arc<DatasetStore>;

    fn snapshot_kind() -> &'static str {
        "sfatrie/v1"
    }

    fn save_payload(&self, out: &mut dyn SnapshotSink) -> Result<()> {
        let params = *self.quantizer.params();
        out.put_usize(params.series_length)?;
        out.put_usize(params.word_length)?;
        out.put_usize(params.alphabet_size)?;
        out.put_u8(match params.binning {
            BinningMethod::EquiDepth => 0,
            BinningMethod::EquiWidth => 1,
        })?;
        for d in 0..params.word_length {
            for &bp in self.quantizer.breakpoints(d) {
                out.put_f64(bp)?;
            }
        }
        out.put_usize(self.leaf_capacity)?;
        out.put_usize(self.nodes.len())?;
        for (node, prefix) in self.nodes.iter().zip(&self.prefixes) {
            out.put_usize(prefix.len())?;
            out.write_bytes(prefix)?;
            match node {
                TrieNode::Internal { children } => {
                    out.put_u8(0)?;
                    out.put_usize(children.len())?;
                    for (&symbol, &child) in children {
                        out.put_u8(symbol)?;
                        out.put_usize(child)?;
                    }
                }
                TrieNode::Leaf { entries } => {
                    out.put_u8(1)?;
                    out.put_usize(entries.len())?;
                    for e in entries {
                        out.put_u32(e.id)?;
                        out.write_bytes(&e.word.symbols)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn load_payload(store: Arc<DatasetStore>, input: &mut dyn SnapshotSource) -> Result<Self> {
        let invalid = Error::InvalidSnapshot;
        let series_length = input.get_usize()?;
        if series_length != store.series_length() {
            return Err(invalid(format!(
                "trie summarizes series of length {series_length}, store holds {}",
                store.series_length()
            )));
        }
        let word_length = input.get_usize()?;
        let alphabet_size = input.get_usize()?;
        if word_length == 0 || !(2..=256).contains(&alphabet_size) {
            return Err(invalid(format!(
                "degenerate SFA parameters: word length {word_length}, alphabet {alphabet_size}"
            )));
        }
        let binning = match input.get_u8()? {
            0 => BinningMethod::EquiDepth,
            1 => BinningMethod::EquiWidth,
            tag => return Err(invalid(format!("unknown binning tag {tag}"))),
        };
        let params = SfaParams {
            series_length,
            word_length,
            alphabet_size,
            binning,
        };
        let mut breakpoints = Vec::with_capacity(word_length);
        for _ in 0..word_length {
            let mut bp = Vec::with_capacity(alphabet_size - 1);
            for _ in 0..alphabet_size - 1 {
                bp.push(input.get_f64()?);
            }
            breakpoints.push(bp);
        }
        let quantizer = SfaQuantizer::from_parts(params, breakpoints);
        let leaf_capacity = input.get_usize()?;
        if leaf_capacity == 0 {
            return Err(invalid("trie has zero leaf capacity".to_string()));
        }
        let num_nodes = input.get_count(2)?;
        let mut nodes = Vec::with_capacity(num_nodes);
        let mut prefixes = Vec::with_capacity(num_nodes);
        let n = store.len();
        let mut seen = vec![false; n];
        for _ in 0..num_nodes {
            let prefix_len = input.get_count(1)?;
            if prefix_len > word_length {
                return Err(invalid(format!(
                    "node prefix of length {prefix_len} exceeds the word length {word_length}"
                )));
            }
            let mut prefix = vec![0u8; prefix_len];
            input.read_bytes(&mut prefix)?;
            let node = match input.get_u8()? {
                0 => {
                    let count = input.get_count(9)?;
                    let mut children = BTreeMap::new();
                    for _ in 0..count {
                        let symbol = input.get_u8()?;
                        let child = input.get_usize()?;
                        if child >= num_nodes {
                            return Err(invalid(format!(
                                "child {child} outside the arena of {num_nodes}"
                            )));
                        }
                        children.insert(symbol, child);
                    }
                    TrieNode::Internal { children }
                }
                1 => {
                    let count = input.get_count(4 + word_length)?;
                    let mut entries = Vec::with_capacity(count);
                    for _ in 0..count {
                        let id = input.get_u32()?;
                        if id as usize >= n || seen[id as usize] {
                            return Err(invalid(format!(
                                "leaf entry id {id} is out of range or duplicated (store holds {n})"
                            )));
                        }
                        seen[id as usize] = true;
                        let mut symbols = vec![0u8; word_length];
                        input.read_bytes(&mut symbols)?;
                        entries.push(LeafEntry {
                            id,
                            word: SfaWord { symbols },
                        });
                    }
                    TrieNode::Leaf { entries }
                }
                tag => return Err(invalid(format!("unknown node tag {tag}"))),
            };
            nodes.push(node);
            prefixes.push(prefix);
        }
        if nodes.is_empty() {
            return Err(invalid("trie has no nodes".to_string()));
        }
        if !seen.iter().all(|&s| s) {
            return Err(invalid(format!(
                "trie does not cover every series of the store ({n})"
            )));
        }
        Ok(Self {
            store,
            quantizer,
            nodes,
            prefixes,
            leaf_capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::RandomWalkGenerator;
    use hydra_scan::ucr::brute_force_knn;

    fn build(count: usize, len: usize, leaf: usize) -> (Arc<DatasetStore>, SfaTrie) {
        let store = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(13, len).dataset(count),
        ));
        let options = BuildOptions::default()
            .with_segments(16.min(len))
            .with_leaf_capacity(leaf)
            .with_alphabet_size(8)
            .with_train_samples(200);
        let index = SfaTrie::build_on_store(store.clone(), &options).unwrap();
        (store, index)
    }

    #[test]
    fn descriptor_matches_table1() {
        let (_, idx) = build(30, 32, 10);
        assert_eq!(idx.descriptor().name, "SFA trie");
        assert_eq!(idx.descriptor().representation, "SFA");
    }

    #[test]
    fn all_series_are_indexed_and_trie_splits() {
        let (_, idx) = build(600, 64, 20);
        assert_eq!(idx.num_entries(), 600);
        assert!(
            idx.num_nodes() > 1,
            "600 series with capacity 20 must split the root"
        );
        let fp = idx.footprint();
        assert_eq!(fp.leaf_fill_factors.len(), fp.leaf_nodes);
        assert!(fp.max_leaf_depth() >= 1);
        assert_eq!(fp.disk_bytes, 600 * 64 * 4);
    }

    #[test]
    fn exactness_against_brute_force() {
        let (store, idx) = build(400, 64, 20);
        for q in RandomWalkGenerator::new(113, 64).series_batch(12) {
            for k in [1usize, 5] {
                let expected = brute_force_knn(store.dataset(), q.values(), k);
                let got = idx.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert!(got.distances_match(&expected, 1e-4), "k={k}");
            }
        }
    }

    #[test]
    fn exactness_with_equi_width_binning() {
        let store = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(13, 64).dataset(200),
        ));
        let options = BuildOptions::default()
            .with_segments(16)
            .with_leaf_capacity(10)
            .with_alphabet_size(8);
        let idx =
            SfaTrie::build_with_binning(store.clone(), &options, BinningMethod::EquiWidth).unwrap();
        let q = RandomWalkGenerator::new(14, 64).series(0);
        let expected = brute_force_knn(store.dataset(), q.values(), 1);
        let got = idx.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-4));
    }

    #[test]
    fn exactness_on_deep_like_length() {
        let (store, idx) = build(150, 96, 10);
        let q = RandomWalkGenerator::new(15, 96).series(2);
        let expected = brute_force_knn(store.dataset(), q.values(), 1);
        let got = idx.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-4));
    }

    #[test]
    fn self_queries_prune() {
        let (store, idx) = build(800, 64, 40);
        let q = store.dataset().series(400).to_owned_series();
        let mut stats = QueryStats::default();
        let ans = idx.answer(&Query::nearest_neighbor(q), &mut stats).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 400);
        assert!(
            stats.pruning_ratio(800) > 0.5,
            "ratio {}",
            stats.pruning_ratio(800)
        );
    }

    #[test]
    fn ng_approximate_search_visits_at_most_one_leaf() {
        let (store, idx) = build(300, 64, 15);
        let q = store.dataset().series(10).to_owned_series();
        let mut stats = QueryStats::default();
        let ans = idx
            .answer(
                &Query::nearest_neighbor(q).with_mode(AnswerMode::NgApproximate),
                &mut stats,
            )
            .unwrap();
        assert!(stats.leaves_visited <= 1);
        assert_eq!(ans.nearest().unwrap().id, 10);
        assert_eq!(ans.guarantee(), hydra_core::Guarantee::None);
    }

    #[test]
    fn epsilon_zero_is_bit_identical_to_exact() {
        let (_, idx) = build(300, 64, 15);
        for q in RandomWalkGenerator::new(513, 64).series_batch(4) {
            let exact_q = Query::knn(q, 3);
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            let exact = idx.answer(&exact_q, &mut s1).unwrap();
            let zero = idx
                .answer(
                    &exact_q
                        .clone()
                        .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.0 }),
                    &mut s2,
                )
                .unwrap();
            assert_eq!(zero.answers(), exact.answers());
            assert_eq!(s1.raw_series_examined, s2.raw_series_examined);
            assert_eq!(s1.lower_bounds_computed, s2.lower_bounds_computed);
        }
    }

    #[test]
    fn intra_query_search_is_bit_identical_to_serial() {
        let (store, idx) = build(400, 64, 15);
        let mut queries: Vec<Query> = RandomWalkGenerator::new(911, 64)
            .series_batch(5)
            .into_iter()
            .map(|q| Query::knn(q, 3))
            .collect();
        queries.push(Query::knn(store.dataset().series(123).to_owned_series(), 3));
        queries.push(
            Query::knn(store.dataset().series(7).to_owned_series(), 3)
                .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.5 }),
        );
        for query in &queries {
            let mut serial_stats = QueryStats::default();
            let serial = idx.answer(query, &mut serial_stats).unwrap();
            for threads in [2usize, 4] {
                let mut stats = QueryStats::default();
                let got = idx
                    .intra_answering()
                    .unwrap()
                    .answer_intra(query, threads, &mut stats)
                    .unwrap();
                assert_eq!(serial, got, "threads={threads}");
                assert_eq!(serial_stats.raw_series_examined, stats.raw_series_examined);
                assert_eq!(serial_stats.early_abandons, stats.early_abandons);
                assert_eq!(serial_stats.leaves_visited, stats.leaves_visited);
                assert_eq!(
                    serial_stats.lower_bounds_computed,
                    stats.lower_bounds_computed
                );
                assert_eq!(serial_stats.bytes_read, stats.bytes_read);
            }
        }
    }

    #[test]
    fn larger_leaves_mean_fewer_nodes() {
        let (_, small) = build(500, 64, 10);
        let (_, large) = build(500, 64, 200);
        assert!(small.num_nodes() > large.num_nodes());
    }

    #[test]
    fn parallel_build_produces_the_identical_trie() {
        let data = RandomWalkGenerator::new(13, 64).dataset(500);
        let options = BuildOptions::default()
            .with_segments(16)
            .with_leaf_capacity(20)
            .with_alphabet_size(8)
            .with_train_samples(200);
        let serial = SfaTrie::build_on_store(
            Arc::new(DatasetStore::new(data.clone())),
            &options.clone().with_build_threads(1),
        )
        .unwrap();
        let parallel = SfaTrie::build_on_store(
            Arc::new(DatasetStore::new(data.clone())),
            &options.with_build_threads(4),
        )
        .unwrap();
        assert_eq!(parallel.num_nodes(), serial.num_nodes());
        assert_eq!(parallel.num_entries(), serial.num_entries());
        let (fp_s, fp_p) = (serial.footprint(), parallel.footprint());
        assert_eq!(fp_p.total_nodes, fp_s.total_nodes);
        assert_eq!(fp_p.leaf_nodes, fp_s.leaf_nodes);
        let sorted = |mut v: Vec<usize>| {
            v.sort();
            v
        };
        assert_eq!(
            sorted(fp_p.leaf_depths.clone()),
            sorted(fp_s.leaf_depths.clone())
        );
        for q in RandomWalkGenerator::new(913, 64).series_batch(6) {
            let a = serial.answer_simple(&Query::knn(q.clone(), 3)).unwrap();
            let b = parallel.answer_simple(&Query::knn(q, 3)).unwrap();
            assert!(a.distances_match(&b, 1e-12));
        }
    }

    #[test]
    fn rejects_empty_dataset_and_bad_query() {
        assert!(SfaTrie::build(&Dataset::empty(8), &BuildOptions::default()).is_err());
        let (_, idx) = build(20, 64, 8);
        assert!(idx
            .answer_simple(&Query::nearest_neighbor(hydra_core::Series::new(vec![
                0.0;
                8
            ])))
            .is_err());
    }
}

//! The shared iSAX tree structure used by iSAX2+ and ADS+.
//!
//! The tree is rooted at a virtual node whose children correspond to the
//! 1-bit-per-segment iSAX words (created on demand). Internal nodes carry an
//! iSAX word and a split segment; splitting a leaf promotes one segment to one
//! more bit and redistributes the leaf's entries between the two children.
//! The split segment is chosen to balance the two children as evenly as
//! possible (the iSAX 2.0 splitting policy).

use hydra_core::persist::{SnapshotSink, SnapshotSource};
use hydra_core::{parallel, Error, IndexFootprint, QueryStats, Result};
use hydra_transforms::sax::{IsaxWord, SaxParams, SaxWord};
// hydra-lint: allow(hash-iteration-order) key_index is slot lookup only; keys get sorted
use std::collections::{BTreeMap, HashMap};

/// Identifier of a node inside the tree's arena.
pub type NodeId = usize;

/// One entry stored in a leaf: the series position and its full-cardinality
/// SAX word.
#[derive(Clone, Debug)]
pub struct LeafEntry {
    /// Position of the series in the dataset.
    pub id: u32,
    /// Full-cardinality SAX word of the series.
    pub sax: SaxWord,
}

/// The payload of a node.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// An internal node with exactly two children produced by a split.
    Internal {
        /// The segment whose cardinality was increased by the split.
        split_segment: usize,
        /// Child whose promoted bit is 0.
        left: NodeId,
        /// Child whose promoted bit is 1.
        right: NodeId,
    },
    /// A leaf node holding entries.
    Leaf {
        /// The entries stored in this leaf.
        entries: Vec<LeafEntry>,
    },
}

/// A node of the iSAX tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// The iSAX word (region) this node covers.
    pub word: IsaxWord,
    /// The node payload.
    pub kind: NodeKind,
    /// Depth below the virtual root (root children have depth 1).
    pub depth: usize,
}

/// An iSAX tree: a forest of root children keyed by their 1-bit words.
///
/// Root children are held in a `BTreeMap` so that iterating them (the
/// best-first search seeds one frontier entry per root child) follows a
/// deterministic key order — two structurally identical trees, e.g. a fresh
/// build and a reloaded snapshot, then traverse identically even when
/// MINDIST values tie.
#[derive(Clone, Debug)]
pub struct IsaxTree {
    params: SaxParams,
    leaf_capacity: usize,
    nodes: Vec<Node>,
    root_children: BTreeMap<Vec<u16>, NodeId>,
}

impl IsaxTree {
    /// Creates an empty tree.
    pub fn new(params: SaxParams, leaf_capacity: usize) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        Self {
            params,
            leaf_capacity,
            nodes: Vec::new(),
            root_children: BTreeMap::new(),
        }
    }

    /// The SAX parameters of the tree.
    pub fn params(&self) -> &SaxParams {
        &self.params
    }

    /// The leaf capacity.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// The number of nodes (internal + leaf).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access to a node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The ids of the root children.
    pub fn root_children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.root_children.values().copied()
    }

    /// Iterates over all leaf node ids.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Leaf { .. }))
            .map(|(i, _)| i)
    }

    /// Total number of entries stored in the tree.
    pub fn num_entries(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Leaf { entries } => entries.len(),
                _ => 0,
            })
            .sum()
    }

    fn root_key(&self, sax: &SaxWord) -> Vec<u16> {
        let shift = self.params.max_bits() - 1;
        sax.symbols.iter().map(|&s| s >> shift).collect()
    }

    /// Bulk-builds a tree from `(id, word)` entries using up to `threads`
    /// workers.
    ///
    /// Entries are grouped by their 1-bit root key; each root-child subtree is
    /// then built independently (inserting its entries in the given order) and
    /// the finished subtrees are grafted into one arena. Because an insert
    /// only ever touches the subtree of its own root child, this produces a
    /// tree with **exactly the same shape** as serially inserting the entries
    /// in order — for every thread count, including 1 — so a parallel build is
    /// indistinguishable from a serial one.
    pub fn from_entries(
        params: SaxParams,
        leaf_capacity: usize,
        entries: Vec<(u32, SaxWord)>,
        threads: usize,
    ) -> Self {
        type RootBucket = (Vec<u16>, Vec<(u32, SaxWord)>);
        let mut tree = Self::new(params.clone(), leaf_capacity);
        // Group by root key, preserving the entry order inside each bucket;
        // sort the keys so the arena layout is deterministic.
        let mut buckets: Vec<RootBucket> = Vec::new();
        // hydra-lint: allow(hash-iteration-order) slot lookup only; bucket keys are sorted below
        let mut key_index: HashMap<Vec<u16>, usize> = HashMap::new();
        for (id, sax) in entries {
            let key = tree.root_key(&sax);
            let slot = *key_index.entry(key.clone()).or_insert_with(|| {
                buckets.push((key, Vec::new()));
                buckets.len() - 1
            });
            buckets[slot].1.push((id, sax));
        }
        buckets.sort_by(|a, b| a.0.cmp(&b.0));
        let (keys, payloads): (Vec<_>, Vec<_>) = buckets.into_iter().unzip();
        // Build each root-child subtree as its own single-root-child tree,
        // consuming its bucket (no per-word copies on the build path).
        let subtrees: Vec<IsaxTree> = parallel::map_items(payloads, threads, |_, bucket| {
            let mut subtree = IsaxTree::new(params.clone(), leaf_capacity);
            for (id, sax) in bucket {
                subtree.insert(id, sax);
            }
            subtree
        });
        // Graft the subtree arenas into one, offsetting child indices.
        for (key, subtree) in keys.into_iter().zip(subtrees) {
            let offset = tree.nodes.len();
            let root_child = subtree.root_children[&key] + offset;
            for mut node in subtree.nodes {
                if let NodeKind::Internal { left, right, .. } = &mut node.kind {
                    *left += offset;
                    *right += offset;
                }
                tree.nodes.push(node);
            }
            tree.root_children.insert(key, root_child);
        }
        tree
    }

    /// Inserts one series (by id and full SAX word) into the tree, splitting
    /// leaves as needed.
    pub fn insert(&mut self, id: u32, sax: SaxWord) {
        let key = self.root_key(&sax);
        let root_child = match self.root_children.get(&key) {
            Some(&nid) => nid,
            None => {
                let word = IsaxWord::root_of(&sax, self.params.max_bits());
                let nid = self.nodes.len();
                self.nodes.push(Node {
                    word,
                    kind: NodeKind::Leaf {
                        entries: Vec::new(),
                    },
                    depth: 1,
                });
                self.root_children.insert(key, nid);
                nid
            }
        };
        let mut current = root_child;
        while let NodeKind::Internal {
            split_segment,
            left,
            right,
        } = &self.nodes[current].kind
        {
            let (left, right, seg) = (*left, *right, *split_segment);
            let child_bits = self.nodes[left].word.bits[seg];
            let shift = self.params.max_bits() - child_bits;
            let sym = sax.symbols[seg] >> shift;
            current = if sym & 1 == 0 { left } else { right };
        }
        if let NodeKind::Leaf { entries } = &mut self.nodes[current].kind {
            entries.push(LeafEntry { id, sax });
        }
        self.maybe_split(current);
    }

    /// Splits `leaf` if it exceeds the capacity and a useful split exists.
    fn maybe_split(&mut self, leaf: NodeId) {
        {
            let needs_split = match &self.nodes[leaf].kind {
                NodeKind::Leaf { entries } => entries.len() > self.leaf_capacity,
                NodeKind::Internal { .. } => false,
            };
            if !needs_split {
                return;
            }
            let Some(segment) = self.choose_split_segment(leaf) else {
                // No segment can be refined further: allow the over-full leaf.
                return;
            };
            let word = self.nodes[leaf].word.clone();
            let depth = self.nodes[leaf].depth;
            let (left_word, right_word) = word
                .split(segment)
                // hydra-lint: allow(lib-unwrap) segment was chosen from the splittable set above
                .expect("chosen segment must be splittable");
            let entries = match std::mem::replace(
                &mut self.nodes[leaf].kind,
                NodeKind::Internal {
                    split_segment: segment,
                    left: 0,
                    right: 0,
                },
            ) {
                NodeKind::Leaf { entries } => entries,
                NodeKind::Internal { .. } => unreachable!(),
            };
            let child_bits = left_word.bits[segment];
            let shift = self.params.max_bits() - child_bits;
            let mut left_entries = Vec::new();
            let mut right_entries = Vec::new();
            for e in entries {
                let sym = e.sax.symbols[segment] >> shift;
                if sym & 1 == 0 {
                    left_entries.push(e);
                } else {
                    right_entries.push(e);
                }
            }
            let left_len = left_entries.len();
            let right_len = right_entries.len();
            let left_id = self.nodes.len();
            self.nodes.push(Node {
                word: left_word,
                kind: NodeKind::Leaf {
                    entries: left_entries,
                },
                depth: depth + 1,
            });
            let right_id = self.nodes.len();
            self.nodes.push(Node {
                word: right_word,
                kind: NodeKind::Leaf {
                    entries: right_entries,
                },
                depth: depth + 1,
            });
            self.nodes[leaf].kind = NodeKind::Internal {
                split_segment: segment,
                left: left_id,
                right: right_id,
            };
            // Recurse into whichever child is still over-full (at most one can
            // hold all the entries).
            let next = if left_len > self.leaf_capacity {
                left_id
            } else if right_len > self.leaf_capacity {
                right_id
            } else {
                return;
            };
            // Recurse into the over-full child.
            self.maybe_split(next);
        }
    }

    /// Chooses the segment whose promotion splits the leaf's entries most
    /// evenly. Returns `None` if every segment is at full cardinality or no
    /// segment separates the entries at all (degenerate identical words).
    fn choose_split_segment(&self, leaf: NodeId) -> Option<usize> {
        let node = &self.nodes[leaf];
        let entries = match &node.kind {
            NodeKind::Leaf { entries } => entries,
            NodeKind::Internal { .. } => return None,
        };
        let segments = self.params.segments();
        let max_bits = self.params.max_bits();
        let mut best: Option<(usize, usize)> = None; // (imbalance, segment)
        for seg in 0..segments {
            let bits = node.word.bits[seg];
            if bits >= max_bits {
                continue;
            }
            let shift = max_bits - (bits + 1);
            let left = entries
                .iter()
                .filter(|e| (e.sax.symbols[seg] >> shift) & 1 == 0)
                .count();
            let right = entries.len() - left;
            if left == 0 || right == 0 {
                continue;
            }
            let imbalance = left.abs_diff(right);
            match best {
                Some((b, _)) if imbalance >= b => {}
                _ => best = Some((imbalance, seg)),
            }
        }
        if best.is_none() {
            // Fall back to any refinable segment (keeps cardinality growing so
            // later inserts can separate), provided at least one exists.
            return (0..segments).find(|&seg| self.nodes[leaf].word.bits[seg] < max_bits);
        }
        best.map(|(_, seg)| seg)
    }

    /// Finds the leaf whose region contains `sax`, if any, descending from the
    /// matching root child. Records node visits into `stats`.
    pub fn locate_leaf(&self, sax: &SaxWord, stats: &mut QueryStats) -> Option<NodeId> {
        let key = self.root_key(sax);
        let mut current = *self.root_children.get(&key)?;
        loop {
            match &self.nodes[current].kind {
                NodeKind::Internal {
                    split_segment,
                    left,
                    right,
                } => {
                    stats.record_internal_visit();
                    let child_bits = self.nodes[*left].word.bits[*split_segment];
                    let shift = self.params.max_bits() - child_bits;
                    let sym = sax.symbols[*split_segment] >> shift;
                    current = if sym & 1 == 0 { *left } else { *right };
                }
                NodeKind::Leaf { .. } => return Some(current),
            }
        }
    }

    /// The MINDIST lower bound between a query's PAA values and a node.
    pub fn mindist(&self, query_paa: &[f32], node: NodeId) -> f64 {
        self.params
            .mindist_paa_to_isax(query_paa, &self.nodes[node].word)
    }

    /// Like [`IsaxTree::locate_leaf`], but never gives up: when no root child
    /// covers `sax` (the query's region was never populated), descends from
    /// the MINDIST-closest root child, picking the MINDIST-closer side at
    /// every split. Used by ng-approximate answering, which must always visit
    /// one leaf; exact search keeps [`IsaxTree::locate_leaf`] so its seeding
    /// (and its work counters) are unchanged.
    pub fn locate_nearest_leaf(
        &self,
        query_paa: &[f32],
        sax: &SaxWord,
        stats: &mut QueryStats,
    ) -> Option<NodeId> {
        if let Some(leaf) = self.locate_leaf(sax, stats) {
            return Some(leaf);
        }
        let mut current = self.root_children().min_by(|&a, &b| {
            self.mindist(query_paa, a)
                .total_cmp(&self.mindist(query_paa, b))
        })?;
        loop {
            match &self.nodes[current].kind {
                NodeKind::Internal { left, right, .. } => {
                    stats.record_internal_visit();
                    stats.record_lower_bounds(2);
                    current = if self.mindist(query_paa, *left) <= self.mindist(query_paa, *right) {
                        *left
                    } else {
                        *right
                    };
                }
                NodeKind::Leaf { .. } => return Some(current),
            }
        }
    }

    /// Serializes the complete tree — parameters, node arena (including every
    /// leaf's SAX word table), and root-child directory — for an index
    /// snapshot.
    pub fn write_snapshot(&self, out: &mut dyn SnapshotSink) -> Result<()> {
        let segments = self.params.segments();
        out.put_usize(self.params.series_length())?;
        out.put_usize(segments)?;
        out.put_u8(self.params.max_bits())?;
        out.put_usize(self.leaf_capacity)?;
        out.put_usize(self.nodes.len())?;
        for node in &self.nodes {
            out.put_usize(node.depth)?;
            for &sym in &node.word.symbols {
                out.put_u16(sym)?;
            }
            for &bits in &node.word.bits {
                out.put_u8(bits)?;
            }
            match &node.kind {
                NodeKind::Internal {
                    split_segment,
                    left,
                    right,
                } => {
                    out.put_u8(0)?;
                    out.put_usize(*split_segment)?;
                    out.put_usize(*left)?;
                    out.put_usize(*right)?;
                }
                NodeKind::Leaf { entries } => {
                    out.put_u8(1)?;
                    out.put_usize(entries.len())?;
                    for e in entries {
                        out.put_u32(e.id)?;
                        for &sym in &e.sax.symbols {
                            out.put_u16(sym)?;
                        }
                    }
                }
            }
        }
        out.put_usize(self.root_children.len())?;
        for (key, &node) in &self.root_children {
            for &k in key {
                out.put_u16(k)?;
            }
            out.put_usize(node)?;
        }
        Ok(())
    }

    /// Reconstructs a tree from a snapshot payload written by
    /// [`IsaxTree::write_snapshot`]. Structural inconsistencies (out-of-range
    /// node ids or segment indices, degenerate parameters) are typed
    /// [`Error::InvalidSnapshot`]s, never panics.
    pub fn read_snapshot(input: &mut dyn SnapshotSource) -> Result<IsaxTree> {
        let invalid = |msg: String| Error::InvalidSnapshot(msg);
        let series_length = input.get_usize()?;
        let segments = input.get_usize()?;
        let max_bits = input.get_u8()?;
        if segments == 0 || segments > series_length {
            return Err(invalid(format!(
                "iSAX tree has {segments} segments over series length {series_length}"
            )));
        }
        if !(1..=16).contains(&max_bits) {
            return Err(invalid(format!("iSAX max_bits {max_bits} outside 1..=16")));
        }
        let leaf_capacity = input.get_usize()?;
        if leaf_capacity == 0 {
            return Err(invalid("iSAX tree has zero leaf capacity".to_string()));
        }
        let params = SaxParams::new(series_length, segments, max_bits);
        let num_nodes = input.get_count(segments * 3 + 2)?;
        let mut nodes = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let depth = input.get_usize()?;
            let mut symbols = Vec::with_capacity(segments);
            for _ in 0..segments {
                symbols.push(input.get_u16()?);
            }
            let mut bits = Vec::with_capacity(segments);
            for _ in 0..segments {
                bits.push(input.get_u8()?);
            }
            // Word sanity: a segment's cardinality never exceeds the table's,
            // and its symbol must fit that cardinality — otherwise MINDIST's
            // breakpoint lookups would index out of range at query time.
            for (seg, (&b, &sym)) in bits.iter().zip(&symbols).enumerate() {
                let bits_ok = (1..=max_bits).contains(&b);
                let symbol_ok = b >= 16 || sym < (1u16 << b);
                if !bits_ok || !symbol_ok {
                    return Err(invalid(format!(
                        "segment {seg}: symbol {sym} at {b} bits is outside the \
                         {max_bits}-bit table"
                    )));
                }
            }
            let word = IsaxWord {
                symbols,
                bits,
                max_bits,
            };
            let kind = match input.get_u8()? {
                0 => {
                    let split_segment = input.get_usize()?;
                    let left = input.get_usize()?;
                    let right = input.get_usize()?;
                    if split_segment >= segments || left >= num_nodes || right >= num_nodes {
                        return Err(invalid(format!(
                            "internal node references segment {split_segment} / children \
                             {left},{right} outside the arena of {num_nodes}"
                        )));
                    }
                    NodeKind::Internal {
                        split_segment,
                        left,
                        right,
                    }
                }
                1 => {
                    let count = input.get_count(4 + segments * 2)?;
                    let mut entries = Vec::with_capacity(count);
                    for _ in 0..count {
                        let id = input.get_u32()?;
                        let mut sax_symbols = Vec::with_capacity(segments);
                        for _ in 0..segments {
                            sax_symbols.push(input.get_u16()?);
                        }
                        entries.push(LeafEntry {
                            id,
                            sax: SaxWord {
                                symbols: sax_symbols,
                            },
                        });
                    }
                    NodeKind::Leaf { entries }
                }
                tag => return Err(invalid(format!("unknown node tag {tag}"))),
            };
            nodes.push(Node { word, kind, depth });
        }
        let num_roots = input.get_count(segments * 2 + 8)?;
        let mut root_children = BTreeMap::new();
        for _ in 0..num_roots {
            let mut key = Vec::with_capacity(segments);
            for _ in 0..segments {
                key.push(input.get_u16()?);
            }
            let node = input.get_usize()?;
            if node >= num_nodes {
                return Err(invalid(format!(
                    "root child {node} outside the arena of {num_nodes}"
                )));
            }
            root_children.insert(key, node);
        }
        Ok(IsaxTree {
            params,
            leaf_capacity,
            nodes,
            root_children,
        })
    }

    /// Builds the footprint report for this tree, given the byte cost of one
    /// leaf entry on disk (raw series bytes for iSAX2+, summary bytes for
    /// ADS+).
    pub fn footprint(&self, entry_disk_bytes: usize) -> IndexFootprint {
        let mut leaf_fill_factors = Vec::new();
        let mut leaf_depths = Vec::new();
        let mut leaf_nodes = 0usize;
        let mut disk_bytes = 0usize;
        for n in &self.nodes {
            if let NodeKind::Leaf { entries } = &n.kind {
                leaf_nodes += 1;
                leaf_fill_factors.push(entries.len() as f64 / self.leaf_capacity as f64);
                leaf_depths.push(n.depth);
                disk_bytes += entries.len() * entry_disk_bytes;
            }
        }
        let memory_bytes = self.nodes.len()
            * (std::mem::size_of::<Node>() + self.params.segments() * 3)
            + self.num_entries() * (std::mem::size_of::<LeafEntry>() + self.params.segments() * 2);
        IndexFootprint {
            total_nodes: self.nodes.len(),
            leaf_nodes,
            memory_bytes,
            disk_bytes,
            leaf_fill_factors,
            leaf_depths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::RandomWalkGenerator;

    fn params() -> SaxParams {
        SaxParams::new(64, 8, 8)
    }

    fn build_tree(count: usize, leaf_capacity: usize) -> (IsaxTree, hydra_core::Dataset) {
        let data = RandomWalkGenerator::new(5, 64).dataset(count);
        let p = params();
        let mut tree = IsaxTree::new(p.clone(), leaf_capacity);
        for (i, s) in data.iter().enumerate() {
            tree.insert(i as u32, p.sax_word(s.values()));
        }
        (tree, data)
    }

    #[test]
    fn all_entries_are_stored() {
        let (tree, _) = build_tree(500, 16);
        assert_eq!(tree.num_entries(), 500);
        assert!(tree.num_nodes() > 1);
        assert_eq!(tree.leaf_capacity(), 16);
    }

    #[test]
    fn leaves_respect_capacity_unless_degenerate() {
        let (tree, _) = build_tree(1000, 16);
        for leaf in tree.leaves() {
            if let NodeKind::Leaf { entries } = &tree.node(leaf).kind {
                // Random-walk SAX words are diverse enough that no leaf should
                // stay over-full after splitting.
                assert!(entries.len() <= 16, "leaf holds {} entries", entries.len());
            }
        }
    }

    #[test]
    fn every_entry_is_in_a_leaf_whose_word_contains_it() {
        let (tree, _) = build_tree(300, 8);
        for leaf in tree.leaves() {
            let node = tree.node(leaf);
            if let NodeKind::Leaf { entries } = &node.kind {
                for e in entries {
                    assert!(
                        node.word.contains(&e.sax),
                        "leaf word must cover its entries"
                    );
                }
            }
        }
    }

    #[test]
    fn locate_leaf_finds_the_leaf_containing_the_word() {
        let (tree, data) = build_tree(400, 16);
        let p = params();
        let mut stats = QueryStats::default();
        for i in (0..400).step_by(37) {
            let sax = p.sax_word(data.series(i).values());
            let leaf = tree
                .locate_leaf(&sax, &mut stats)
                .expect("series word must map to a leaf");
            if let NodeKind::Leaf { entries } = &tree.node(leaf).kind {
                assert!(
                    entries.iter().any(|e| e.id == i as u32),
                    "series {i} must be in the located leaf"
                );
            }
        }
        assert!(stats.internal_nodes_visited > 0 || tree.num_nodes() <= 500);
    }

    #[test]
    fn mindist_to_containing_leaf_is_zero_or_tiny() {
        let (tree, data) = build_tree(200, 8);
        let p = params();
        let mut stats = QueryStats::default();
        let q = data.series(0);
        let paa = p.paa().transform(q.values());
        let sax = p.sax_word(q.values());
        let leaf = tree.locate_leaf(&sax, &mut stats).unwrap();
        assert!(tree.mindist(&paa, leaf) < 1e-9);
    }

    #[test]
    fn splitting_produces_internal_nodes_with_two_children() {
        let (tree, _) = build_tree(500, 4);
        let mut internals = 0;
        for i in 0..tree.num_nodes() {
            if let NodeKind::Internal { left, right, .. } = tree.node(i).kind {
                internals += 1;
                assert_ne!(left, right);
                assert_eq!(tree.node(left).depth, tree.node(i).depth + 1);
                assert_eq!(tree.node(right).depth, tree.node(i).depth + 1);
            }
        }
        assert!(
            internals > 0,
            "a 500-series tree with capacity 4 must have split"
        );
    }

    #[test]
    fn footprint_reports_consistent_counts() {
        let (tree, _) = build_tree(600, 32);
        let fp = tree.footprint(64 * 4);
        assert_eq!(fp.total_nodes, tree.num_nodes());
        assert_eq!(fp.leaf_nodes, tree.leaves().count());
        assert_eq!(fp.leaf_fill_factors.len(), fp.leaf_nodes);
        assert_eq!(fp.disk_bytes, 600 * 64 * 4);
        assert!(fp.mean_fill_factor() > 0.0 && fp.mean_fill_factor() <= 1.0 + 1e-9);
        assert!(fp.max_leaf_depth() >= 1);
    }

    #[test]
    fn duplicate_words_do_not_loop_forever() {
        // Insert many series with identical values: their SAX words are all
        // identical, so no split can separate them; the tree must terminate
        // with one over-full leaf rather than hang.
        let p = params();
        let mut tree = IsaxTree::new(p.clone(), 4);
        let series = vec![0.5f32; 64];
        let sax = p.sax_word(&series);
        for i in 0..100 {
            tree.insert(i, sax.clone());
        }
        assert_eq!(tree.num_entries(), 100);
    }

    #[test]
    #[should_panic(expected = "leaf capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = IsaxTree::new(params(), 0);
    }

    /// Shape signature independent of arena layout: sorted (depth, entries)
    /// per leaf plus the node count.
    fn shape(tree: &IsaxTree) -> (usize, Vec<(usize, usize)>) {
        let mut leaves: Vec<(usize, usize)> = tree
            .leaves()
            .map(|l| {
                let n = tree.node(l);
                match &n.kind {
                    NodeKind::Leaf { entries } => (n.depth, entries.len()),
                    _ => unreachable!(),
                }
            })
            .collect();
        leaves.sort();
        (tree.num_nodes(), leaves)
    }

    #[test]
    fn snapshot_round_trips_and_rejects_forged_words() {
        use hydra_core::persist::SliceSource;
        let (tree, _) = build_tree(300, 16);
        let mut payload: Vec<u8> = Vec::new();
        tree.write_snapshot(&mut payload).unwrap();
        let mut src = SliceSource::new(&payload);
        let reloaded = IsaxTree::read_snapshot(&mut src).unwrap();
        assert_eq!(src.remaining(), 0);
        assert_eq!(reloaded.num_nodes(), tree.num_nodes());
        assert_eq!(reloaded.num_entries(), tree.num_entries());
        assert_eq!(shape(&reloaded), shape(&tree));

        // Forge the first node's first per-segment bit count beyond max_bits:
        // header is series_length (8) + segments (8) + max_bits (1) +
        // leaf_capacity (8) + num_nodes (8) + depth (8), then the word's
        // symbols (2 bytes per segment) precede its bits bytes.
        let segments = tree.params().segments();
        let bits_at = 41 + 2 * segments;
        let mut forged = payload.clone();
        forged[bits_at] = 200;
        let mut src = SliceSource::new(&forged);
        match IsaxTree::read_snapshot(&mut src) {
            Err(hydra_core::Error::InvalidSnapshot(msg)) => {
                assert!(msg.contains("bits"), "{msg}")
            }
            Err(other) => panic!("expected InvalidSnapshot, got {other}"),
            Ok(_) => panic!("a word beyond the table's cardinality must be rejected"),
        }
    }

    #[test]
    fn from_entries_matches_incremental_insertion_for_any_thread_count() {
        let data = RandomWalkGenerator::new(5, 64).dataset(700);
        let p = params();
        let entries: Vec<(u32, SaxWord)> = data
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, p.sax_word(s.values())))
            .collect();
        let mut incremental = IsaxTree::new(p.clone(), 16);
        for (id, sax) in &entries {
            incremental.insert(*id, sax.clone());
        }
        let expected = shape(&incremental);
        for threads in [1usize, 4] {
            let bulk = IsaxTree::from_entries(p.clone(), 16, entries.clone(), threads);
            assert_eq!(bulk.num_entries(), 700, "threads={threads}");
            assert_eq!(shape(&bulk), expected, "threads={threads}");
            // Every entry must still be locatable in a covering leaf.
            let mut stats = QueryStats::default();
            for i in (0..700).step_by(97) {
                let sax = p.sax_word(data.series(i).values());
                let leaf = bulk.locate_leaf(&sax, &mut stats).unwrap();
                if let NodeKind::Leaf { entries } = &bulk.node(leaf).kind {
                    assert!(entries.iter().any(|e| e.id == i as u32));
                }
            }
        }
    }
}

//! The iSAX2+ index.
//!
//! iSAX2+ builds an iSAX tree whose leaves materialize the raw series they
//! cover (so that a leaf visit is one contiguous disk read), using a
//! balance-aware splitting policy. It answers:
//!
//! * **ng-approximate** queries by descending to the single leaf whose region
//!   covers the query's SAX word and scanning only that leaf;
//! * **exact** queries with a best-first traversal ordered by the MINDIST
//!   lower bound, seeded with the approximate answer as the initial
//!   best-so-far and pruning every subtree whose MINDIST is not below it.

use crate::tree::{IsaxTree, NodeId, NodeKind};
use hydra_core::persist::{PersistentIndex, SnapshotSink, SnapshotSource};
use hydra_core::{
    parallel, replay_outcome, AnswerMode, AnswerSet, AnsweringMethod, BudgetMeter, BuildOptions,
    Dataset, Error, ExactIndex, IndexFootprint, IntraAnswering, KnnHeap, MethodDescriptor,
    ModeCapabilities, Outcome, Query, QueryStats, Result, SharedBsf,
};
use hydra_storage::DatasetStore;
use hydra_transforms::sax::{SaxParams, SaxWord};
use std::cmp::Ordering;
// hydra-lint: allow(hash-iteration-order) replay map is keyed lookup only; never iterated
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// How a leaf scan evaluates candidate distances: directly (the serial path)
/// or by replaying worker-recorded [`Outcome`]s against the serial threshold
/// (the intra-query path). Replay falls back to direct evaluation for leaves
/// absent from the map, so correctness never depends on which leaves the
/// workers chose to precompute.
enum LeafEval<'a> {
    Direct,
    // hydra-lint: allow(hash-iteration-order) evidence fetched per leaf id; never iterated
    Replay(&'a HashMap<NodeId, Vec<Outcome>>),
}

/// The iSAX2+ index.
pub struct Isax2Plus {
    store: Arc<DatasetStore>,
    tree: IsaxTree,
}

/// Priority-queue entry for best-first traversal (min-heap on MINDIST).
struct Frontier {
    mindist: f64,
    node: NodeId,
}
impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.mindist == other.mindist
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap.
        other.mindist.total_cmp(&self.mindist)
    }
}

impl Isax2Plus {
    /// Builds the index over an instrumented store.
    ///
    /// `options.build_threads` workers summarize the collection and build the
    /// root-child subtrees in parallel; the resulting tree is identical for
    /// every thread count (see [`IsaxTree::from_entries`]).
    pub fn build_on_store(store: Arc<DatasetStore>, options: &BuildOptions) -> Result<Self> {
        if store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        options.validate(store.series_length())?;
        let threads = parallel::resolve_threads(options.build_threads);
        let max_bits = log2_ceil(options.alphabet_size).clamp(1, 16) as u8;
        let params = SaxParams::new(store.series_length(), options.segments, max_bits);
        // One sequential pass over the raw data (charged up front), then
        // summarization and subtree construction spread over the workers.
        store.scan_all(|_, _| {});
        let dataset = store.dataset();
        let entries: Vec<(u32, SaxWord)> = parallel::map_chunks(store.len(), threads, |range| {
            range
                .map(|id| (id as u32, params.sax_word(dataset.series(id).values())))
                .collect()
        });
        let tree = IsaxTree::from_entries(params, options.leaf_capacity, entries, threads);
        // Leaves materialize raw series: account for the bulk-load write.
        store.record_index_write((store.len() * store.series_bytes()) as u64);
        Ok(Self { store, tree })
    }

    /// The underlying iSAX tree.
    pub fn tree(&self) -> &IsaxTree {
        &self.tree
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// Scans one leaf — computing exact distances of its entries against the
    /// query, charging one random access plus sequential pages for the
    /// leaf's materialized payload — with an explicit evaluation source:
    /// `Direct` runs the early-abandoning kernel; `Replay` decides each
    /// entry from the worker-recorded [`Outcome`] via [`replay_outcome`],
    /// recomputing only when the record cannot decide. Counters and I/O
    /// charges are identical either way.
    fn scan_leaf_with(
        &self,
        leaf: NodeId,
        query: &Query,
        heap: &mut KnnHeap,
        meter: &mut BudgetMeter,
        stats: &mut QueryStats,
        eval: &LeafEval<'_>,
    ) -> Result<()> {
        let NodeKind::Leaf { entries } = &self.tree.node(leaf).kind else {
            return Ok(());
        };
        // Fault checkpoint for the leaf's materialized payload read, keyed
        // by its first series so an injected fault is stable per leaf.
        if let Some(first) = entries.first() {
            self.store.try_access(first.id as u64)?;
        }
        stats.record_leaf_visit();
        let leaf_bytes = (entries.len() * self.store.series_bytes()) as u64;
        let pages = leaf_bytes.div_ceil(self.store.page_bytes() as u64).max(1);
        stats.record_io(pages - 1, 1, leaf_bytes);
        let dataset = self.store.dataset();
        let recorded = match eval {
            LeafEval::Direct => None,
            LeafEval::Replay(map) => map.get(&leaf),
        };
        for (i, e) in entries.iter().enumerate() {
            if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                break;
            }
            stats.record_raw_series_examined(1);
            let series = dataset.series(e.id as usize);
            let kernel = |threshold: f64| {
                hydra_core::distance::squared_euclidean_early_abandon(
                    query.values(),
                    series.values(),
                    threshold,
                )
            };
            let result = match recorded {
                Some(outcomes) => replay_outcome(outcomes[i], heap.threshold_squared(), kernel),
                None => kernel(heap.threshold_squared()),
            };
            match result {
                Some(sq) => {
                    heap.offer(e.id as usize, sq.sqrt());
                }
                None => stats.record_early_abandon(),
            }
        }
        Ok(())
    }
}

fn log2_ceil(x: usize) -> u32 {
    (usize::BITS - x.next_power_of_two().leading_zeros()).saturating_sub(1)
}

impl AnsweringMethod for Isax2Plus {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "iSAX2+",
            representation: "iSAX",
            is_index: true,
            modes: ModeCapabilities::all(),
        }
    }

    fn index_footprint(&self) -> Option<IndexFootprint> {
        Some(ExactIndex::footprint(self))
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        self.answer_with_eval(query, stats, &LeafEval::Direct)
    }

    fn intra_answering(&self) -> Option<&dyn IntraAnswering> {
        Some(self)
    }
}

impl IntraAnswering for Isax2Plus {
    /// MESSI-style intra-query search: a serial seeding pass (into scratch
    /// stats, discarded) establishes the initial best-so-far; every leaf
    /// whose MINDIST could survive that threshold is then scanned by the
    /// worker pool — each worker starts from a clone of the seed heap and
    /// prunes against the tighter of its local threshold and the
    /// [`SharedBsf`] — recording one [`Outcome`] per entry from the
    /// in-memory dataset. The real answer is produced by re-running the full
    /// serial traversal ([`Isax2Plus::answer_with_eval`]) with those
    /// outcomes replayed against the serial thresholds, so answers,
    /// counters, and I/O charges are bit-identical to the serial path.
    /// ng-approximate queries visit a single leaf and simply run serially.
    fn answer_intra(
        &self,
        query: &Query,
        threads: usize,
        stats: &mut QueryStats,
    ) -> Result<AnswerSet> {
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        if query.mode() == AnswerMode::NgApproximate {
            return self.answer(query, stats);
        }
        let k = query.knn_k("iSAX2+")?;
        let params = self.tree.params().clone();
        let query_paa = params.paa().transform(query.values());
        let query_sax = params.sax_word_from_paa(&query_paa);

        // Phase A (serial, scratch counters): seed the best-so-far exactly
        // like the serial phase 1. The replay re-runs this seeding with the
        // real stats, so the scratch pass records nothing.
        let mut scratch = QueryStats::default();
        let mut scratch_meter = BudgetMeter::new(query.budget(), self.store.len());
        let mut seed_heap = KnnHeap::new(k);
        if let Some(leaf) = self.tree.locate_leaf(&query_sax, &mut scratch) {
            self.scan_leaf_with(
                leaf,
                query,
                &mut seed_heap,
                &mut scratch_meter,
                &mut scratch,
                &LeafEval::Direct,
            )?;
        }

        // Candidate leaves: everything the serial traversal could visit. The
        // serial threshold only tightens below the seed threshold, so leaves
        // at or beyond `seed_threshold * shrink` are provably never scanned
        // (when the seed heap is not yet full, nothing is provable and every
        // leaf is a candidate).
        let shrink = query.mode().prune_shrink();
        let seed_threshold = seed_heap.threshold();
        let candidates: Vec<NodeId> = self
            .tree
            .leaves()
            .filter(|&leaf| {
                !seed_heap.is_full()
                    || self.tree.mindist(&query_paa, leaf) < seed_threshold * shrink
            })
            .collect();

        // Phase B: fan the candidate leaves out over the workers.
        let bsf = SharedBsf::new(seed_heap.threshold_squared());
        let per_leaf: Vec<Vec<Outcome>> = parallel::map_indexed(candidates.len(), threads, |ci| {
            let NodeKind::Leaf { entries } = &self.tree.node(candidates[ci]).kind else {
                return Vec::new();
            };
            let dataset = self.store.dataset();
            let mut local = seed_heap.clone();
            let mut out = Vec::with_capacity(entries.len());
            for e in entries {
                let threshold = local.threshold_squared().min(bsf.get());
                match hydra_core::distance::squared_euclidean_early_abandon(
                    query.values(),
                    dataset.series(e.id as usize).values(),
                    threshold,
                ) {
                    Some(sq) => {
                        out.push(Outcome::Computed(sq));
                        local.offer(e.id as usize, sq.sqrt());
                        bsf.update_min(local.threshold_squared());
                    }
                    None => out.push(Outcome::Abandoned { threshold }),
                }
            }
            out
        });
        // hydra-lint: allow(hash-iteration-order) keyed lookup during serial replay; never iterated
        let recorded: HashMap<NodeId, Vec<Outcome>> =
            candidates.into_iter().zip(per_leaf).collect();

        // Phase C (serial): the full serial algorithm, deciding every leaf
        // entry from the recorded evidence.
        self.answer_with_eval(query, stats, &LeafEval::Replay(&recorded))
    }
}

impl Isax2Plus {
    /// The full serial answering algorithm, parameterized by the leaf
    /// evaluation source — shared verbatim by [`AnsweringMethod::answer`]
    /// (`Direct`) and the intra-query replay phase (`Replay`), so the two
    /// traverse, count, and prune identically by construction.
    fn answer_with_eval(
        &self,
        query: &Query,
        stats: &mut QueryStats,
        eval: &LeafEval<'_>,
    ) -> Result<AnswerSet> {
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("iSAX2+")?;
        let mode = query.mode();
        let clock = hydra_core::RunClock::start();
        let params = self.tree.params().clone();
        let query_paa = params.paa().transform(query.values());
        let query_sax = params.sax_word_from_paa(&query_paa);

        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());
        // Phase 1: ng-approximate search seeds the best-so-far — and in
        // ng-approximate mode this covering leaf is the whole answer, so that
        // mode falls back to the MINDIST-nearest leaf when the query's region
        // was never populated (exact search keeps the plain lookup so its
        // work counters are unchanged: the traversal finds every leaf anyway).
        let seed = if mode == AnswerMode::NgApproximate {
            self.tree.locate_nearest_leaf(&query_paa, &query_sax, stats)
        } else {
            self.tree.locate_leaf(&query_sax, stats)
        };
        if let Some(leaf) = seed {
            self.scan_leaf_with(leaf, query, &mut heap, &mut meter, stats, eval)?;
        }
        if mode != AnswerMode::NgApproximate {
            // Phase 2: best-first traversal with MINDIST pruning, relaxed by
            // `shrink = δ/(1+ε)` in the approximate modes (1 for exact, so
            // ε = 0 is bit-identical to exact search).
            let shrink = mode.prune_shrink();
            let mut frontier = BinaryHeap::new();
            for root_child in self.tree.root_children() {
                let mindist = self.tree.mindist(&query_paa, root_child);
                stats.record_lower_bounds(1);
                frontier.push(Frontier {
                    mindist,
                    node: root_child,
                });
            }
            while let Some(Frontier { mindist, node }) = frontier.pop() {
                if meter.is_truncated() {
                    break; // budget exhausted: keep the best-so-far
                }
                if heap.is_full() && mindist >= heap.threshold() * shrink {
                    break; // everything else in the frontier is at least as far
                }
                match &self.tree.node(node).kind {
                    NodeKind::Leaf { .. } => {
                        self.scan_leaf_with(node, query, &mut heap, &mut meter, stats, eval)?
                    }
                    NodeKind::Internal { left, right, .. } => {
                        stats.record_internal_visit();
                        for child in [*left, *right] {
                            let d = self.tree.mindist(&query_paa, child);
                            stats.record_lower_bounds(1);
                            if !heap.is_full() || d < heap.threshold() * shrink {
                                frontier.push(Frontier {
                                    mindist: d,
                                    node: child,
                                });
                            }
                        }
                    }
                }
            }
        }
        stats.cpu_time += clock.elapsed();
        let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }
}

impl ExactIndex for Isax2Plus {
    fn build(dataset: &Dataset, options: &BuildOptions) -> Result<Self> {
        Self::build_on_store(Arc::new(DatasetStore::new(dataset.clone())), options)
    }

    fn footprint(&self) -> IndexFootprint {
        self.tree.footprint(self.store.series_bytes())
    }

    fn num_series(&self) -> usize {
        self.store.len()
    }

    fn series_length(&self) -> usize {
        self.store.series_length()
    }
}

/// Validates that a reloaded tree actually describes the series of `store`:
/// matching series length, every leaf entry in range, and exactly one entry
/// per series. Shared by the iSAX2+ and ADS+ snapshot loaders.
pub(crate) fn validate_tree_against_store(tree: &IsaxTree, store: &DatasetStore) -> Result<()> {
    if tree.params().series_length() != store.series_length() {
        return Err(Error::InvalidSnapshot(format!(
            "tree summarizes series of length {}, store holds {}",
            tree.params().series_length(),
            store.series_length()
        )));
    }
    let n = store.len();
    let mut seen = vec![false; n];
    for leaf in tree.leaves() {
        if let NodeKind::Leaf { entries } = &tree.node(leaf).kind {
            for e in entries {
                let id = e.id as usize;
                if id >= n || seen[id] {
                    return Err(Error::InvalidSnapshot(format!(
                        "leaf entry id {id} is out of range or duplicated (store holds {n})"
                    )));
                }
                seen[id] = true;
            }
        }
    }
    if tree.num_entries() != n {
        return Err(Error::InvalidSnapshot(format!(
            "tree indexes {} series, store holds {n}",
            tree.num_entries()
        )));
    }
    Ok(())
}

impl PersistentIndex for Isax2Plus {
    type Context = Arc<DatasetStore>;

    fn snapshot_kind() -> &'static str {
        "isax2plus/v1"
    }

    fn save_payload(&self, out: &mut dyn SnapshotSink) -> Result<()> {
        self.tree.write_snapshot(out)
    }

    fn load_payload(store: Arc<DatasetStore>, input: &mut dyn SnapshotSource) -> Result<Self> {
        let tree = IsaxTree::read_snapshot(input)?;
        validate_tree_against_store(&tree, &store)?;
        Ok(Self { store, tree })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::RandomWalkGenerator;
    use hydra_scan::ucr::brute_force_knn;

    fn build(count: usize, len: usize, leaf: usize) -> (Arc<DatasetStore>, Isax2Plus) {
        let store = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(51, len).dataset(count),
        ));
        let options = BuildOptions::default()
            .with_segments(16.min(len))
            .with_leaf_capacity(leaf)
            .with_alphabet_size(256);
        let index = Isax2Plus::build_on_store(store.clone(), &options).unwrap();
        (store, index)
    }

    #[test]
    fn descriptor_matches_table1() {
        let (_, idx) = build(50, 64, 16);
        let d = idx.descriptor();
        assert_eq!(d.name, "iSAX2+");
        assert_eq!(d.representation, "iSAX");
        assert!(d.is_index);
        assert_eq!(d.modes, ModeCapabilities::all());
    }

    #[test]
    fn indexes_every_series() {
        let (_, idx) = build(300, 64, 20);
        assert_eq!(idx.tree().num_entries(), 300);
        assert_eq!(idx.num_series(), 300);
        assert_eq!(idx.series_length(), 64);
    }

    #[test]
    fn exactness_against_brute_force() {
        let (store, idx) = build(500, 64, 25);
        for q in RandomWalkGenerator::new(151, 64).series_batch(15) {
            for k in [1usize, 5] {
                let expected = brute_force_knn(store.dataset(), q.values(), k);
                let got = idx.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert!(got.distances_match(&expected, 1e-4), "k={k}");
            }
        }
    }

    #[test]
    fn exactness_on_non_power_of_two_length() {
        let (store, idx) = build(200, 96, 10);
        let q = RandomWalkGenerator::new(61, 96).series(3);
        let expected = brute_force_knn(store.dataset(), q.values(), 1);
        let got = idx.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-4));
    }

    #[test]
    fn self_queries_prune_heavily() {
        let (store, idx) = build(1000, 64, 50);
        let q = store.dataset().series(321).to_owned_series();
        let mut stats = QueryStats::default();
        let ans = idx.answer(&Query::nearest_neighbor(q), &mut stats).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 321);
        assert!(
            stats.pruning_ratio(1000) > 0.8,
            "pruning ratio {}",
            stats.pruning_ratio(1000)
        );
        assert!(stats.leaves_visited >= 1);
        assert!(stats.lower_bounds_computed > 0);
    }

    #[test]
    fn ng_approximate_search_visits_one_leaf() {
        let (store, idx) = build(800, 64, 40);
        let q = store.dataset().series(100).to_owned_series();
        let mut stats = QueryStats::default();
        let ans = idx
            .answer(
                &Query::nearest_neighbor(q).with_mode(AnswerMode::NgApproximate),
                &mut stats,
            )
            .unwrap();
        assert_eq!(stats.leaves_visited, 1);
        assert_eq!(ans.guarantee(), hydra_core::Guarantee::None);
        // The approximate answer for a dataset member found in its own leaf is
        // exact (distance 0).
        assert_eq!(ans.nearest().unwrap().id, 100);
        // And it never exceeds the dataset size worth of work.
        assert!(stats.raw_series_examined <= 41);
    }

    #[test]
    fn approximate_answers_are_never_better_than_exact() {
        let (_, idx) = build(400, 64, 20);
        for q in RandomWalkGenerator::new(251, 64).series_batch(5) {
            let exact = idx
                .answer_simple(&Query::nearest_neighbor(q.clone()))
                .unwrap();
            for mode in [
                AnswerMode::NgApproximate,
                AnswerMode::EpsilonApproximate { epsilon: 0.5 },
                AnswerMode::DeltaEpsilon {
                    delta: 0.9,
                    epsilon: 0.5,
                },
            ] {
                let approx = idx
                    .answer_simple(&Query::nearest_neighbor(q.clone()).with_mode(mode))
                    .unwrap();
                if let (Some(a), Some(e)) = (approx.nearest(), exact.nearest()) {
                    assert!(a.distance + 1e-9 >= e.distance, "{mode}");
                }
            }
        }
    }

    #[test]
    fn epsilon_zero_matches_exact_bit_for_bit() {
        let (_, idx) = build(400, 64, 20);
        for q in RandomWalkGenerator::new(253, 64).series_batch(4) {
            let exact_q = Query::knn(q, 5);
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            let exact = idx.answer(&exact_q, &mut s1).unwrap();
            let zero = idx
                .answer(
                    &exact_q
                        .clone()
                        .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.0 }),
                    &mut s2,
                )
                .unwrap();
            assert_eq!(zero.answers(), exact.answers());
            assert_eq!(s1.raw_series_examined, s2.raw_series_examined);
            assert_eq!(s1.lower_bounds_computed, s2.lower_bounds_computed);
            assert_eq!(s1.leaves_visited, s2.leaves_visited);
        }
    }

    #[test]
    fn footprint_reflects_leaf_materialization() {
        let (_, idx) = build(600, 64, 30);
        let fp = idx.footprint();
        assert!(fp.total_nodes >= fp.leaf_nodes);
        assert_eq!(
            fp.disk_bytes,
            600 * 64 * 4,
            "leaves materialize all raw series"
        );
        assert!(fp.mean_fill_factor() > 0.0);
    }

    #[test]
    fn coarse_roots_force_splits_and_internal_nodes() {
        // With only 4 segments the root fanout is 16, so 600 series with leaf
        // capacity 30 must overflow some root children and create splits.
        let store = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(51, 64).dataset(600),
        ));
        let options = BuildOptions::default()
            .with_segments(4)
            .with_leaf_capacity(30)
            .with_alphabet_size(256);
        let idx = Isax2Plus::build_on_store(store, &options).unwrap();
        let fp = idx.footprint();
        assert!(
            fp.total_nodes > fp.leaf_nodes,
            "expected internal nodes from splits"
        );
        assert!(fp.max_leaf_depth() >= 2);
    }

    #[test]
    fn smaller_leaves_mean_more_nodes() {
        let (_, small) = build(500, 64, 10);
        let (_, large) = build(500, 64, 100);
        assert!(small.footprint().total_nodes > large.footprint().total_nodes);
    }

    #[test]
    fn rejects_empty_dataset_and_bad_query() {
        assert!(Isax2Plus::build(&Dataset::empty(8), &BuildOptions::default()).is_err());
        let (_, idx) = build(20, 64, 8);
        assert!(idx
            .answer_simple(&Query::nearest_neighbor(hydra_core::Series::new(vec![
                0.0;
                8
            ])))
            .is_err());
    }
}

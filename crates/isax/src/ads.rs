//! ADS+, the adaptive data series index, with the SIMS exact-search algorithm.
//!
//! ADS+ builds the iSAX tree using **only the summaries** of the raw series —
//! leaves hold series positions and SAX words, never raw values — which makes
//! index construction dramatically cheaper than iSAX2+ (the paper's Figure 6a).
//! The cost is shifted to query time. Exact queries use SIMS:
//!
//! 1. an ng-approximate tree descent reads the raw series of one leaf from the
//!    raw file to obtain an initial best-so-far (bsf);
//! 2. the MINDIST lower bound between the query and *every* series' full-
//!    resolution iSAX summary is computed in memory;
//! 3. a skip-sequential pass over the raw file reads only the series whose
//!    lower bound is below the bsf, skipping (seeking over) the pruned ones,
//!    and refines the bsf as it goes.
//!
//! Every skip is a random disk access — the behaviour that makes ADS+ the
//! fastest method to build but sensitive to seek latency on HDDs (and very
//! fast on SSDs), exactly the trade-off the paper analyses.

use crate::tree::{IsaxTree, NodeKind};
use hydra_core::persist::{PersistentIndex, SnapshotSink, SnapshotSource};
use hydra_core::{
    parallel, AnswerMode, AnswerSet, AnsweringMethod, BatchAnswering, BudgetMeter, BuildOptions,
    Dataset, Error, ExactIndex, IndexFootprint, IntraAnswering, KnnHeap, MethodDescriptor,
    ModeCapabilities, Query, QueryStats, Result,
};
use hydra_storage::DatasetStore;
use hydra_transforms::sax::{SaxParams, SaxWord};
use std::sync::Arc;

/// The ADS+ adaptive index.
pub struct AdsPlus {
    store: Arc<DatasetStore>,
    tree: IsaxTree,
    /// Full-cardinality SAX word of every series, in dataset order (the
    /// in-memory summary array SIMS scans).
    summaries: Vec<SaxWord>,
}

impl AdsPlus {
    /// Builds the ADS+ index over an instrumented store.
    ///
    /// `options.build_threads` workers summarize the collection and build the
    /// root-child subtrees in parallel; the resulting tree is identical for
    /// every thread count (see [`IsaxTree::from_entries`]).
    pub fn build_on_store(store: Arc<DatasetStore>, options: &BuildOptions) -> Result<Self> {
        if store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        options.validate(store.series_length())?;
        let threads = parallel::resolve_threads(options.build_threads);
        let max_bits = log2_ceil(options.alphabet_size).clamp(1, 16) as u8;
        let params = SaxParams::new(store.series_length(), options.segments, max_bits);
        // One sequential pass over the raw data (charged up front), then
        // summarization spread over the workers in dataset order.
        store.scan_all(|_, _| {});
        let dataset = store.dataset();
        let summaries: Vec<SaxWord> = parallel::map_chunks(store.len(), threads, |range| {
            range
                .map(|id| params.sax_word(dataset.series(id).values()))
                .collect()
        });
        let entries: Vec<(u32, SaxWord)> = summaries
            .iter()
            .enumerate()
            .map(|(id, sax)| (id as u32, sax.clone()))
            .collect();
        let tree = IsaxTree::from_entries(params, options.leaf_capacity, entries, threads);
        // Only the summaries are written out: the index is tiny on disk.
        let summary_bytes = store.len() * options.segments * 2;
        store.record_index_write(summary_bytes as u64);
        Ok(Self {
            store,
            tree,
            summaries,
        })
    }

    /// The underlying iSAX tree.
    pub fn tree(&self) -> &IsaxTree {
        &self.tree
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// Seeds the best-so-far with an ng-approximate search: descend to the
    /// covering leaf and read its series from the raw file (random accesses).
    ///
    /// With `nearest_fallback` (the ng-approximate mode, which must always
    /// visit one leaf) a query whose region was never populated descends to
    /// the MINDIST-nearest leaf instead of seeding nothing; exact search
    /// keeps the plain lookup so its work counters are unchanged.
    fn approximate_bsf(
        &self,
        query: &Query,
        query_paa: &[f32],
        heap: &mut KnnHeap,
        meter: &mut BudgetMeter,
        stats: &mut QueryStats,
        nearest_fallback: bool,
    ) -> Result<()> {
        let params = self.tree.params();
        let sax = params.sax_word_from_paa(query_paa);
        let located = if nearest_fallback {
            self.tree.locate_nearest_leaf(query_paa, &sax, stats)
        } else {
            self.tree.locate_leaf(&sax, stats)
        };
        let Some(leaf) = located else {
            return Ok(());
        };
        stats.record_leaf_visit();
        if let NodeKind::Leaf { entries } = &self.tree.node(leaf).kind {
            for e in entries {
                if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                    break;
                }
                let series = self.store.try_read_series(e.id as usize)?;
                stats.record_raw_series_examined(1);
                let d = hydra_core::distance::euclidean(query.values(), series.values());
                heap.offer(e.id as usize, d);
            }
        }
        Ok(())
    }

    /// SIMS step 3 for one query: the skip-sequential pass over the raw
    /// file, reading contiguous runs of non-pruned candidates (one seek +
    /// sequential transfer per run) and refining the best-so-far. The
    /// ε-relaxed modes skip a candidate as soon as its bound reaches
    /// `bsf * shrink` with `shrink = δ/(1+ε)` (1 for exact, so ε = 0 is
    /// bit-identical).
    ///
    /// Shared verbatim by the serial path and the batch kernel.
    fn skip_sequential_scan(
        &self,
        query: &Query,
        bounds: &[f64],
        shrink: f64,
        heap: &mut KnnHeap,
        meter: &mut BudgetMeter,
        stats: &mut QueryStats,
    ) -> Result<()> {
        let n = self.store.len();
        let mut id = 0usize;
        while id < n {
            if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                break;
            }
            if heap.is_full() && bounds[id] >= heap.threshold() * shrink {
                id += 1;
                continue;
            }
            // Extend a contiguous run of non-pruned candidates and read it in
            // one go (one seek + sequential transfer). A budget stop caps the
            // run so a nearly exhausted budget never pays for unread series.
            let run_start = id;
            let threshold = heap.threshold() * shrink;
            let max_run = meter
                .limit()
                .map(|l| (l.saturating_sub(stats.raw_series_examined)).max(1) as usize)
                .unwrap_or(usize::MAX);
            while id < n && id - run_start < max_run && !(heap.is_full() && bounds[id] >= threshold)
            {
                id += 1;
            }
            let run = self.store.try_read_run(run_start, id - run_start)?;
            for (offset, series) in run.iter().enumerate() {
                let sid = run_start + offset;
                stats.record_raw_series_examined(1);
                match hydra_core::distance::squared_euclidean_early_abandon(
                    query.values(),
                    series.values(),
                    heap.threshold_squared(),
                ) {
                    Some(sq) => {
                        heap.offer(sid, sq.sqrt());
                    }
                    None => stats.record_early_abandon(),
                }
            }
        }
        Ok(())
    }
}

fn log2_ceil(x: usize) -> u32 {
    (usize::BITS - x.next_power_of_two().leading_zeros()).saturating_sub(1)
}

impl AnsweringMethod for AdsPlus {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "ADS+",
            representation: "iSAX",
            is_index: true,
            modes: ModeCapabilities::all(),
        }
    }

    fn index_footprint(&self) -> Option<IndexFootprint> {
        Some(ExactIndex::footprint(self))
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("ADS+")?;
        let mode = query.mode();
        let clock = hydra_core::RunClock::start();
        let params = self.tree.params().clone();
        let query_paa = params.paa().transform(query.values());

        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());
        // Thread-scoped snapshot: under a parallel workload each worker must
        // observe only its own raw-file traffic.
        let io_before = self.store.thread_io_snapshot();

        // Step 1: approximate search for the initial bsf — the whole answer
        // in ng-approximate mode.
        self.approximate_bsf(
            query,
            &query_paa,
            &mut heap,
            &mut meter,
            stats,
            mode == AnswerMode::NgApproximate,
        )?;

        if mode == AnswerMode::NgApproximate {
            let delta = self.store.thread_io_snapshot().since(&io_before);
            stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
            stats.cpu_time += clock.elapsed();
            let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
            return Ok(heap.into_answer_set().with_guarantee(guarantee));
        }

        // Step 2: in-memory lower bounds against every full-resolution summary.
        let max_bits = params.max_bits();
        let bounds: Vec<f64> = self
            .summaries
            .iter()
            .map(|sax| {
                stats.record_lower_bounds(1);
                params.mindist_paa_to_isax(&query_paa, &sax.to_isax(max_bits, max_bits))
            })
            .collect();

        // Step 3: skip-sequential scan over the raw file (see
        // `skip_sequential_scan`).
        self.skip_sequential_scan(
            query,
            &bounds,
            mode.prune_shrink(),
            &mut heap,
            &mut meter,
            stats,
        )?;

        let delta = self.store.thread_io_snapshot().since(&io_before);
        stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
        stats.cpu_time += clock.elapsed();
        let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }

    fn batch_answering(&self) -> Option<&dyn BatchAnswering> {
        Some(self)
    }

    fn intra_answering(&self) -> Option<&dyn IntraAnswering> {
        Some(self)
    }
}

impl IntraAnswering for AdsPlus {
    /// Intra-query SIMS: step 2's in-memory sweep over the full-resolution
    /// summary array — the CPU bulk of an ADS+ exact query — splits into one
    /// contiguous chunk per worker. The MINDIST bounds depend only on the
    /// query summary (never on the seeded best-so-far), so every bound is an
    /// independent computation and the in-order chunk merge reproduces the
    /// serial bounds array exactly. The bsf-seeding descent (step 1) and the
    /// skip-sequential raw-file pass (step 3, whose skip pattern follows the
    /// evolving best-so-far and whose reads are counted) stay serial, so
    /// answers, counters, and I/O match the serial path bit for bit in every
    /// answering mode; ng-approximate queries never reach the sweep, exactly
    /// like the serial path.
    fn answer_intra(
        &self,
        query: &Query,
        threads: usize,
        stats: &mut QueryStats,
    ) -> Result<AnswerSet> {
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("ADS+")?;
        let mode = query.mode();
        let clock = hydra_core::RunClock::start();
        let params = self.tree.params().clone();
        let query_paa = params.paa().transform(query.values());

        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());
        let io_before = self.store.thread_io_snapshot();

        self.approximate_bsf(
            query,
            &query_paa,
            &mut heap,
            &mut meter,
            stats,
            mode == AnswerMode::NgApproximate,
        )?;

        if mode == AnswerMode::NgApproximate {
            let delta = self.store.thread_io_snapshot().since(&io_before);
            stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
            stats.cpu_time += clock.elapsed();
            let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
            return Ok(heap.into_answer_set().with_guarantee(guarantee));
        }

        let max_bits = params.max_bits();
        let bounds: Vec<f64> = parallel::map_chunks(self.summaries.len(), threads, |range| {
            range
                .map(|i| {
                    params.mindist_paa_to_isax(
                        &query_paa,
                        &self.summaries[i].to_isax(max_bits, max_bits),
                    )
                })
                .collect()
        });
        stats.record_lower_bounds(self.summaries.len() as u64);

        self.skip_sequential_scan(
            query,
            &bounds,
            mode.prune_shrink(),
            &mut heap,
            &mut meter,
            stats,
        )?;

        let delta = self.store.thread_io_snapshot().since(&io_before);
        stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
        stats.cpu_time += clock.elapsed();
        let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }
}

impl BatchAnswering for AdsPlus {
    /// The batched SIMS: the in-memory summary array is swept **once** for
    /// the whole batch — each full-resolution SAX word is widened to its
    /// iSAX form a single time and MINDIST-scored against every non-ng query
    /// while cache-resident — before the per-query phases run. The bsf
    /// seeding descent and the skip-sequential raw-file pass stay per query
    /// (each query's skip pattern follows its own evolving best-so-far),
    /// run back to back over a head-invalidated store delta so their I/O is
    /// attributed exactly as the serial path. Answers and per-query counters
    /// are bit-identical to the per-query loop; ng-approximate queries in
    /// the batch skip the summary sweep entirely, like the serial path.
    ///
    /// The bounds matrix is blocked over [`BOUNDS_BLOCK_QUERIES`] queries at
    /// a time, so the kernel's transient memory is `O(block · N)` regardless
    /// of batch size (one summary sweep per block still amortizes the sweep
    /// block-fold; bound values are per-(query, series) and unaffected).
    fn answer_batch(&self, queries: &[Query], stats: &mut [QueryStats]) -> Result<Vec<AnswerSet>> {
        hydra_core::method::batch_expect_length(queries, self.store.series_length())?;
        let ks = hydra_core::method::batch_knn_ks(queries, "ADS+")?;
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let clock = hydra_core::RunClock::start();
        let params = self.tree.params();
        let max_bits = params.max_bits();
        let n = self.store.len();

        let mut bounds = vec![0.0f64; BOUNDS_BLOCK_QUERIES.min(queries.len()) * n];
        let mut heap = KnnHeap::new(1);
        let mut answers = Vec::with_capacity(queries.len());
        let mut block_start = 0usize;
        for (block_queries, block_stats) in queries
            .chunks(BOUNDS_BLOCK_QUERIES)
            .zip(stats.chunks_mut(BOUNDS_BLOCK_QUERIES))
        {
            let query_paas: Vec<Vec<f32>> = block_queries
                .iter()
                .map(|q| params.paa().transform(q.values()))
                .collect();

            // Step 2 first, shared across the block (the bounds depend only
            // on the query summaries, never on the seeded bsf): one sweep
            // over the summary array scores every exact-phase query of the
            // block. ng-approximate queries never compute lower bounds,
            // exactly like the serial path.
            let sweep_rows: Vec<Option<usize>> = {
                let mut next_row = 0usize;
                block_queries
                    .iter()
                    .map(|q| {
                        (q.mode() != AnswerMode::NgApproximate).then(|| {
                            let row = next_row;
                            next_row += 1;
                            row
                        })
                    })
                    .collect()
            };
            if sweep_rows.iter().flatten().count() > 0 {
                for (i, sax) in self.summaries.iter().enumerate() {
                    let isax = sax.to_isax(max_bits, max_bits);
                    for ((qi, row), stats) in
                        sweep_rows.iter().enumerate().zip(block_stats.iter_mut())
                    {
                        if let Some(row) = row {
                            stats.record_lower_bounds(1);
                            bounds[row * n + i] =
                                params.mindist_paa_to_isax(&query_paas[qi], &isax);
                        }
                    }
                }
            }

            // Steps 1 and 3 per query, contiguous over a head-invalidated
            // store delta so run classification matches the serial path's
            // per-query counter reset.
            for ((qi, query), stats) in block_queries.iter().enumerate().zip(block_stats.iter_mut())
            {
                let mode = query.mode();
                heap.reset(ks[block_start + qi]);
                // Budgeted queries never reach the kernel (the engine falls
                // back to the per-query loop), so this meter is a formality.
                let mut meter = BudgetMeter::new(query.budget(), self.store.len());
                self.store.invalidate_head();
                let io_before = self.store.thread_io_snapshot();
                self.approximate_bsf(
                    query,
                    &query_paas[qi],
                    &mut heap,
                    &mut meter,
                    stats,
                    mode == AnswerMode::NgApproximate,
                )?;
                if let Some(row) = sweep_rows[qi] {
                    self.skip_sequential_scan(
                        query,
                        &bounds[row * n..(row + 1) * n],
                        mode.prune_shrink(),
                        &mut heap,
                        &mut meter,
                        stats,
                    )?;
                }
                let delta = self.store.thread_io_snapshot().since(&io_before);
                stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
                answers.push(heap.take_answer_set().with_guarantee(mode.guarantee()));
            }
            block_start += block_queries.len();
        }
        hydra_core::method::share_batch_cpu_time(stats, clock.elapsed());
        Ok(answers)
    }
}

/// How many queries the batched SIMS bounds per sweep of the summary array:
/// large enough that the sweep is amortized ~64×, small enough that the
/// transient bounds matrix stays `O(64 · N)` for any batch size.
const BOUNDS_BLOCK_QUERIES: usize = 64;

impl ExactIndex for AdsPlus {
    fn build(dataset: &Dataset, options: &BuildOptions) -> Result<Self> {
        Self::build_on_store(Arc::new(DatasetStore::new(dataset.clone())), options)
    }

    fn footprint(&self) -> IndexFootprint {
        // Leaves hold summaries only: one u16 per segment per entry.
        self.tree.footprint(self.tree.params().segments() * 2)
    }

    fn num_series(&self) -> usize {
        self.store.len()
    }

    fn series_length(&self) -> usize {
        self.store.series_length()
    }
}

impl PersistentIndex for AdsPlus {
    type Context = Arc<DatasetStore>;

    fn snapshot_kind() -> &'static str {
        "adsplus/v1"
    }

    fn save_payload(&self, out: &mut dyn SnapshotSink) -> Result<()> {
        // The tree's leaves hold every series' full-cardinality SAX word, so
        // the in-memory summary array SIMS scans is NOT serialized separately:
        // the loader rebuilds it from the leaves (each id appears exactly
        // once), halving the snapshot size.
        self.tree.write_snapshot(out)
    }

    fn load_payload(store: Arc<DatasetStore>, input: &mut dyn SnapshotSource) -> Result<Self> {
        let tree = IsaxTree::read_snapshot(input)?;
        crate::isax2plus::validate_tree_against_store(&tree, &store)?;
        // Rebuild the dataset-order summary array from the leaf entries
        // (validated above: every id in 0..n appears exactly once).
        let mut summaries: Vec<Option<SaxWord>> = vec![None; store.len()];
        for leaf in tree.leaves() {
            if let NodeKind::Leaf { entries } = &tree.node(leaf).kind {
                for e in entries {
                    summaries[e.id as usize] = Some(e.sax.clone());
                }
            }
        }
        let summaries = summaries
            .into_iter()
            .map(|s| s.ok_or_else(|| Error::InvalidSnapshot("missing summary".into())))
            .collect::<Result<Vec<SaxWord>>>()?;
        Ok(Self {
            store,
            tree,
            summaries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::RandomWalkGenerator;
    use hydra_scan::ucr::brute_force_knn;

    fn build(count: usize, len: usize, leaf: usize) -> (Arc<DatasetStore>, AdsPlus) {
        let store = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(71, len).dataset(count),
        ));
        let options = BuildOptions::default()
            .with_segments(16.min(len))
            .with_leaf_capacity(leaf)
            .with_alphabet_size(256);
        let index = AdsPlus::build_on_store(store.clone(), &options).unwrap();
        (store, index)
    }

    #[test]
    fn descriptor_matches_table1() {
        let (_, idx) = build(50, 64, 16);
        assert_eq!(idx.descriptor().name, "ADS+");
        assert_eq!(idx.descriptor().modes, ModeCapabilities::all());
    }

    #[test]
    fn build_writes_far_less_than_isax2plus() {
        let store = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(71, 64).dataset(300),
        ));
        let options = BuildOptions::default()
            .with_segments(16)
            .with_leaf_capacity(20);
        let _ads = AdsPlus::build_on_store(store.clone(), &options).unwrap();
        let ads_written = store.io_snapshot().bytes_written;

        let store2 = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(71, 64).dataset(300),
        ));
        let _isax = crate::Isax2Plus::build_on_store(store2.clone(), &options).unwrap();
        let isax_written = store2.io_snapshot().bytes_written;
        assert!(
            ads_written * 4 < isax_written,
            "ADS+ writes only summaries ({ads_written}) vs iSAX2+ materializing raw data ({isax_written})"
        );
    }

    #[test]
    fn exactness_against_brute_force() {
        let (store, idx) = build(500, 64, 25);
        for q in RandomWalkGenerator::new(171, 64).series_batch(15) {
            for k in [1usize, 5] {
                let expected = brute_force_knn(store.dataset(), q.values(), k);
                let got = idx.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert!(got.distances_match(&expected, 1e-4), "k={k}");
            }
        }
    }

    #[test]
    fn exactness_on_sald_like_length() {
        let (store, idx) = build(200, 128, 10);
        let q = RandomWalkGenerator::new(81, 128).series(9);
        let expected = brute_force_knn(store.dataset(), q.values(), 1);
        let got = idx.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-4));
    }

    #[test]
    fn sims_performs_skip_sequential_access() {
        // Plant near-duplicates of an off-dataset base series at scattered
        // positions. The approximate descent seeds a small but non-zero bsf,
        // so SIMS must seek to each scattered surviving candidate while still
        // pruning the bulk of the file.
        let len = 64;
        let gen = RandomWalkGenerator::new(71, len);
        let base = gen.series(5000);
        let planted = [200usize, 600, 1000, 1400, 1800];
        let mut data = Dataset::empty(len);
        for i in 0..2000usize {
            if let Some(rank) = planted.iter().position(|&p| p == i) {
                let mut v = base.values().to_vec();
                for (j, x) in v.iter_mut().enumerate() {
                    *x += 0.01 * (rank as f32 + 1.0) * ((j % 7) as f32 - 3.0);
                }
                data.push(&v);
            } else {
                data.push(gen.series(i as u64).values());
            }
        }
        let store = Arc::new(DatasetStore::new(data));
        let options = BuildOptions::default()
            .with_segments(16)
            .with_leaf_capacity(100)
            .with_alphabet_size(256);
        let idx = AdsPlus::build_on_store(store.clone(), &options).unwrap();
        store.reset_io();
        let mut stats = QueryStats::default();
        let ans = idx
            .answer(&Query::nearest_neighbor(base), &mut stats)
            .unwrap();
        assert_eq!(
            ans.nearest().unwrap().id,
            200,
            "least-perturbed planted copy must win"
        );
        // Strong pruning: most series are skipped...
        assert!(
            stats.pruning_ratio(2000) > 0.8,
            "ratio {}",
            stats.pruning_ratio(2000)
        );
        // ...at the price of multiple random accesses (skips).
        assert!(
            stats.random_page_accesses > 1,
            "skip-sequential scans should incur several seeks, got {}",
            stats.random_page_accesses
        );
    }

    #[test]
    fn ng_approximate_answers_come_from_a_single_leaf() {
        let (store, idx) = build(600, 64, 30);
        let q = store.dataset().series(77).to_owned_series();
        let mut stats = QueryStats::default();
        let ans = idx
            .answer(
                &Query::nearest_neighbor(q).with_mode(AnswerMode::NgApproximate),
                &mut stats,
            )
            .unwrap();
        assert!(stats.leaves_visited <= 1);
        assert!(stats.raw_series_examined <= 31);
        assert_eq!(ans.nearest().unwrap().id, 77);
        assert_eq!(ans.guarantee(), hydra_core::Guarantee::None);
    }

    #[test]
    fn epsilon_zero_sims_is_bit_identical_to_exact() {
        let (_, idx) = build(400, 64, 20);
        for q in RandomWalkGenerator::new(175, 64).series_batch(4) {
            let exact_q = Query::knn(q, 5);
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            let exact = idx.answer(&exact_q, &mut s1).unwrap();
            let zero = idx
                .answer(
                    &exact_q
                        .clone()
                        .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.0 }),
                    &mut s2,
                )
                .unwrap();
            assert_eq!(zero.answers(), exact.answers());
            assert_eq!(s1.raw_series_examined, s2.raw_series_examined);
            assert_eq!(s1.random_page_accesses, s2.random_page_accesses);
        }
    }

    #[test]
    fn batched_sims_matches_the_per_query_path_including_ng_queries() {
        use hydra_core::{Parallelism, QueryEngine};
        let (store, _) = build(400, 64, 20);
        let mut queries: Vec<Query> = RandomWalkGenerator::new(173, 64)
            .series_batch(4)
            .into_iter()
            .map(|s| Query::knn(s, 3))
            .collect();
        // An ng query in the middle of the batch must skip the shared
        // summary sweep, exactly like the serial path.
        queries.insert(
            2,
            Query::nearest_neighbor(store.dataset().series(77).to_owned_series())
                .with_mode(AnswerMode::NgApproximate),
        );
        let options = BuildOptions::default()
            .with_segments(16)
            .with_leaf_capacity(20)
            .with_alphabet_size(256);
        let engine_on = |st: &Arc<DatasetStore>| {
            QueryEngine::new(
                Box::new(AdsPlus::build_on_store(st.clone(), &options).unwrap()),
                st.len(),
            )
            .with_io_source(st.clone())
        };
        let mut serial = engine_on(&store);
        let serial_answers: Vec<_> = queries.iter().map(|q| serial.answer(q).unwrap()).collect();
        let store2 = Arc::new(DatasetStore::new(store.dataset().clone()));
        let mut batched = engine_on(&store2);
        let batch_answers = batched.answer_batch(&queries, Parallelism::Serial).unwrap();
        for (qi, (a, b)) in serial_answers.iter().zip(&batch_answers).enumerate() {
            assert_eq!(a.answers, b.answers, "query {qi}");
            assert_eq!(a.guarantee, b.guarantee, "query {qi}");
            assert_eq!(
                a.stats.raw_series_examined, b.stats.raw_series_examined,
                "query {qi}"
            );
            assert_eq!(
                a.stats.lower_bounds_computed, b.stats.lower_bounds_computed,
                "query {qi}"
            );
            assert_eq!(a.stats.leaves_visited, b.stats.leaves_visited, "query {qi}");
            assert_eq!(a.stats.early_abandons, b.stats.early_abandons, "query {qi}");
            assert_eq!(
                a.stats.sequential_page_accesses, b.stats.sequential_page_accesses,
                "query {qi}"
            );
            assert_eq!(
                a.stats.random_page_accesses, b.stats.random_page_accesses,
                "query {qi}"
            );
        }
        // The ng query recorded no lower bounds in either path.
        assert_eq!(serial_answers[2].stats.lower_bounds_computed, 0);
    }

    #[test]
    fn footprint_is_summary_sized() {
        let (_, idx) = build(400, 64, 20);
        let fp = idx.footprint();
        assert!(
            fp.disk_bytes < 400 * 64 * 4 / 4,
            "ADS+ persists summaries, not raw data"
        );
        assert_eq!(fp.leaf_fill_factors.len(), fp.leaf_nodes);
        // Same tree shape as iSAX2+ for the same parameters (checked loosely:
        // node counts are equal because insertion order and policy are shared).
        let store2 = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(71, 64).dataset(400),
        ));
        let isax = crate::Isax2Plus::build_on_store(
            store2,
            &BuildOptions::default()
                .with_segments(16)
                .with_leaf_capacity(20),
        )
        .unwrap();
        assert_eq!(fp.total_nodes, isax.footprint().total_nodes);
    }

    #[test]
    fn rejects_empty_dataset_and_bad_query() {
        assert!(AdsPlus::build(&Dataset::empty(8), &BuildOptions::default()).is_err());
        let (_, idx) = build(20, 64, 8);
        assert!(idx
            .answer_simple(&Query::nearest_neighbor(hydra_core::Series::new(vec![
                0.0;
                16
            ])))
            .is_err());
    }
}

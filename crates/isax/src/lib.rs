//! # hydra-isax
//!
//! The iSAX family of indexes evaluated in the paper:
//!
//! * [`Isax2Plus`] — the iSAX2+ index: a tree over iSAX words with
//!   per-segment variable cardinality, bulk-friendly construction that
//!   materializes raw series inside the leaves, and both ng-approximate and
//!   exact query answering.
//! * [`AdsPlus`] — ADS+, the adaptive data series index: it builds the same
//!   tree shape using *only* the iSAX summaries (very fast construction) and
//!   answers exact queries with the SIMS algorithm — an approximate tree
//!   search to seed the best-so-far followed by a skip-sequential scan of the
//!   raw file over the non-pruned candidates.
//!
//! Both share the [`tree::IsaxTree`] structure, which mirrors the fact that in
//! the paper the two indexes have identical tree shapes for identical leaf
//! sizes.

pub mod ads;
pub mod isax2plus;
pub mod tree;

pub use ads::AdsPlus;
pub use isax2plus::Isax2Plus;
